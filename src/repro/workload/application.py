"""Applications: iterative SPMD arrangements of kernels and communication.

An :class:`Application` is the object the tracer runs: ``ranks`` simulated
MPI processes, each executing ``iterations`` repetitions of a step sequence.
A :class:`ComputeStep` runs a kernel (one computation burst); a
:class:`CommStep` invokes a communication pattern from
:mod:`repro.parallel.patterns`, which both costs time and (for collectives)
synchronizes ranks — producing the burst/communication alternation that
minimal instrumentation captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import WorkloadError
from repro.parallel.patterns import CommPattern
from repro.source.model import SourceModel
from repro.workload.kernel import Kernel

__all__ = ["ComputeStep", "CommStep", "Step", "Application"]


@dataclass(frozen=True)
class ComputeStep:
    """One computation burst executing ``kernel``.

    ``per_rank`` optionally overrides the kernel for specific ranks —
    the escape hatch from pure SPMD that master/worker codes need (the
    master runs coordination work while workers run the heavy kernel).
    """

    kernel: Kernel
    per_rank: Optional[Mapping[int, Kernel]] = None

    def kernel_for(self, rank: int) -> Kernel:
        """Kernel rank ``rank`` executes in this step."""
        if self.per_rank is not None and rank in self.per_rank:
            return self.per_rank[rank]
        return self.kernel

    def all_kernels(self) -> List[Kernel]:
        """Every kernel this step can execute (default + overrides)."""
        out = [self.kernel]
        if self.per_rank:
            for kernel in self.per_rank.values():
                if kernel not in out:
                    out.append(kernel)
        return out

    @property
    def label(self) -> str:
        """Display label (kernel name)."""
        return self.kernel.name


@dataclass(frozen=True)
class CommStep:
    """One communication operation following pattern ``pattern``."""

    pattern: CommPattern

    @property
    def label(self) -> str:
        """Display label (MPI call name)."""
        return self.pattern.mpi_name


Step = Union[ComputeStep, CommStep]


@dataclass
class Application:
    """A complete synthetic application.

    Attributes
    ----------
    name:
        Application identifier used in traces and reports.
    source:
        The synthetic source model (files/routines) phases map back to.
    steps:
        The per-iteration step sequence, shared by all ranks (SPMD).
    iterations:
        Number of repetitions of the step sequence.
    ranks:
        Number of simulated MPI processes.
    rank_speed:
        Optional per-rank speed factor (>0); factor 1.1 means that rank's
        compute bursts take 10% longer (static load imbalance).  Length must
        equal ``ranks``.
    """

    name: str
    source: SourceModel
    steps: List[Step]
    iterations: int
    ranks: int = 1
    rank_speed: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("application name must be non-empty")
        if self.iterations < 1:
            raise WorkloadError(f"iterations must be >= 1, got {self.iterations}")
        if self.ranks < 1:
            raise WorkloadError(f"ranks must be >= 1, got {self.ranks}")
        if not self.steps:
            raise WorkloadError(f"application {self.name}: steps must be non-empty")
        if not any(isinstance(s, ComputeStep) for s in self.steps):
            raise WorkloadError(
                f"application {self.name}: needs at least one ComputeStep"
            )
        if self.rank_speed is not None:
            speeds = np.asarray(self.rank_speed, dtype=float)
            if speeds.shape != (self.ranks,):
                raise WorkloadError(
                    f"rank_speed must have shape ({self.ranks},), got {speeds.shape}"
                )
            if np.any(speeds <= 0):
                raise WorkloadError("rank_speed factors must be positive")
            self.rank_speed = speeds

    def speed_of(self, rank: int) -> float:
        """Speed factor of ``rank`` (1.0 when no imbalance configured)."""
        if not 0 <= rank < self.ranks:
            raise WorkloadError(f"rank {rank} out of range [0, {self.ranks})")
        if self.rank_speed is None:
            return 1.0
        return float(self.rank_speed[rank])

    def kernels(self) -> List[Kernel]:
        """Distinct kernels in step order (the ground-truth cluster set),
        including per-rank overrides."""
        seen: List[Kernel] = []
        for step in self.steps:
            if isinstance(step, ComputeStep):
                for kernel in step.all_kernels():
                    if kernel not in seen:
                        seen.append(kernel)
        return seen

    def kernel_named(self, name: str) -> Kernel:
        """Look up a kernel by name."""
        for kernel in self.kernels():
            if kernel.name == name:
                return kernel
        raise WorkloadError(
            f"application {self.name} has no kernel {name!r}; "
            f"kernels: {[k.name for k in self.kernels()]}"
        )

    def with_kernel_replaced(self, old_name: str, new_kernel: Kernel) -> "Application":
        """New application with kernel ``old_name`` swapped for ``new_kernel``.

        The case-study loop uses this to apply a code transformation and
        re-run the identical experiment.
        """
        self.kernel_named(old_name)  # raises if absent
        new_steps: List[Step] = []
        for step in self.steps:
            if isinstance(step, ComputeStep) and step.kernel.name == old_name:
                new_steps.append(ComputeStep(kernel=new_kernel))
            else:
                new_steps.append(step)
        return Application(
            name=self.name,
            source=self.source,
            steps=new_steps,
            iterations=self.iterations,
            ranks=self.ranks,
            rank_speed=self.rank_speed,
        )

    @property
    def bursts_per_rank(self) -> int:
        """Total compute bursts each rank executes."""
        per_iter = sum(1 for s in self.steps if isinstance(s, ComputeStep))
        return per_iter * self.iterations
