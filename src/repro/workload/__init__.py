"""Synthetic workloads — the substitute for in-production applications.

The paper evaluates on production MPI codes; this package builds their
closest synthetic equivalents (DESIGN.md substitution table).  A
:class:`~repro.workload.kernel.Kernel` is a sequence of
:class:`~repro.workload.phases.PhaseSpec` — each phase executes a number of
instructions under a :class:`~repro.machine.behavior.Behavior` at a known
call path — and *instantiates* into an exact
:class:`~repro.machine.rates.RateFunction` per burst instance, with
controlled iteration-to-iteration variability
(:mod:`repro.workload.variability`).  An
:class:`~repro.workload.application.Application` arranges kernels and
communication steps into the iterative SPMD structure the tracer consumes.

:mod:`repro.workload.apps` provides the three case-study applications plus
microbenchmarks; :mod:`repro.workload.generator` builds randomized kernels
for property-style sweeps.
"""

from repro.workload.phases import PhaseSpec
from repro.workload.variability import VariabilityModel
from repro.workload.kernel import Kernel
from repro.workload.application import (
    Application,
    CommStep,
    ComputeStep,
    Step,
)
from repro.workload.generator import random_kernel

__all__ = [
    "PhaseSpec",
    "VariabilityModel",
    "Kernel",
    "Application",
    "ComputeStep",
    "CommStep",
    "Step",
    "random_kernel",
]
