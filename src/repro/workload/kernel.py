"""Kernels: phase sequences that instantiate into rate functions.

A :class:`Kernel` is the body of one computation burst (the code between two
communication calls).  ``base_rate_function`` resolves every phase through
the core model into the exact ground-truth
:class:`~repro.machine.rates.RateFunction`; ``instantiate`` applies an
instance perturbation on top, producing the rate function of one concrete
burst instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.machine.cpu import CoreModel
from repro.machine.rates import RateFunction, RateSegment
from repro.workload.phases import PhaseSpec
from repro.workload.variability import InstancePerturbation, VariabilityModel

__all__ = ["Kernel"]


@dataclass
class Kernel:
    """An ordered sequence of phases forming one computation burst body.

    Attributes
    ----------
    name:
        Kernel identifier; becomes the cluster ground-truth label.
    phases:
        The phase specs, in execution order.
    variability:
        Instance perturbation distribution (defaults to mild noise).
    """

    name: str
    phases: Tuple[PhaseSpec, ...]
    variability: VariabilityModel = field(default_factory=VariabilityModel)

    def __init__(
        self,
        name: str,
        phases: Sequence[PhaseSpec],
        variability: Optional[VariabilityModel] = None,
    ) -> None:
        if not name:
            raise WorkloadError("kernel name must be non-empty")
        if not phases:
            raise WorkloadError(f"kernel {name}: needs at least one phase")
        self.name = name
        self.phases = tuple(phases)
        self.variability = variability or VariabilityModel()

    @property
    def n_phases(self) -> int:
        """Number of ground-truth phases."""
        return len(self.phases)

    @property
    def total_instructions(self) -> float:
        """Instruction budget of one unperturbed instance."""
        return float(sum(p.instructions for p in self.phases))

    def phase_names(self) -> List[str]:
        """Ground-truth phase labels in order."""
        return [p.name for p in self.phases]

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------
    def base_rate_function(self, core: CoreModel) -> RateFunction:
        """Exact rate function of an unperturbed instance on ``core``."""
        clock = core.spec.clock_hz
        segments: List[RateSegment] = []
        t = 0.0
        for phase in self.phases:
            perf = core.performance(phase.behavior)
            duration = perf.seconds_for_instructions(phase.instructions, clock)
            if duration <= 0:
                raise WorkloadError(
                    f"kernel {self.name}: phase {phase.name} has zero duration"
                )
            segments.append(
                RateSegment(
                    t_start=t,
                    t_end=t + duration,
                    rates=perf.rates(clock),
                    label=phase.name,
                    callpath=phase.callpath,
                )
            )
            t += duration
        return RateFunction(segments)

    def instantiate(
        self,
        core: CoreModel,
        rng: np.random.Generator,
    ) -> Tuple[RateFunction, InstancePerturbation]:
        """Rate function of one perturbed burst instance.

        Each phase segment is time-dilated by its perturbation factor with
        rates scaled down reciprocally, so the phase's total event counts
        are preserved (same work, different speed) — the invariant folding
        normalization relies on.
        """
        base = self.base_rate_function(core)
        perturbation = self.variability.sample(self.n_phases, rng)
        counter_sigma = self.variability.counter_sigma
        segments: List[RateSegment] = []
        t = 0.0
        for index, seg in enumerate(base.segments):
            scale = perturbation.scale_for_phase(index)
            duration = seg.duration * scale
            rates = {k: v / scale for k, v in seg.rates.items()}
            if counter_sigma > 0:
                # Data-dependent event noise: cache misses, branches taken,
                # FLOPs executed vary run to run even for "the same" work.
                # Instructions and cycles stay exact — they define the work
                # and the time axis the ground truth is built on.
                for name in rates:
                    if name not in ("PAPI_TOT_INS", "PAPI_TOT_CYC"):
                        rates[name] *= float(rng.lognormal(0.0, counter_sigma))
            segments.append(
                RateSegment(
                    t_start=t,
                    t_end=t + duration,
                    rates=rates,
                    label=seg.label,
                    callpath=seg.callpath,
                )
            )
            t += duration
        return RateFunction(segments), perturbation

    # ------------------------------------------------------------------
    # ground truth for scoring
    # ------------------------------------------------------------------
    def truth_boundaries(self, core: CoreModel) -> np.ndarray:
        """Normalized ground-truth phase boundaries in (0, 1)."""
        return self.base_rate_function(core).normalized_boundaries

    def truth_phase_rates(self, core: CoreModel) -> List[Dict[str, float]]:
        """Per-phase absolute counter rates of the unperturbed instance."""
        return [dict(seg.rates) for seg in self.base_rate_function(core).segments]

    def transformed(
        self,
        phase_name: str,
        behavior=None,
        instruction_factor: float = 1.0,
        suffix: str = "opt",
    ) -> "Kernel":
        """Kernel after a small code transformation of one phase.

        This is the case-study loop's mechanism: replace ``phase_name``'s
        behaviour (e.g. with its ``optimized_blocked()`` variant) and/or
        scale its instruction count, keeping everything else identical.
        """
        found = False
        new_phases: List[PhaseSpec] = []
        for phase in self.phases:
            if phase.name == phase_name:
                found = True
                new_phases.append(
                    phase.with_behavior(
                        behavior if behavior is not None else phase.behavior,
                        instruction_factor=instruction_factor,
                    )
                )
            else:
                new_phases.append(phase)
        if not found:
            raise WorkloadError(
                f"kernel {self.name} has no phase {phase_name!r}; "
                f"phases: {self.phase_names()}"
            )
        return Kernel(
            name=f"{self.name}.{suffix}",
            phases=new_phases,
            variability=self.variability,
        )
