"""Iteration-to-iteration variability model.

Real iterative applications never repeat exactly: OS noise, adaptive
algorithms and contention perturb each burst instance.  The folding method
explicitly copes with this — duration outliers are pruned, and the
normalization makes folding invariant to uniform slowdowns.  This module
generates the perturbations so those code paths are genuinely exercised.

Three effects, all seeded and independent per instance:

* **global scale** — lognormal multiplicative factor on the whole instance
  (same work, dilated time: models frequency/contention jitter);
* **phase jitter** — independent lognormal factor per phase (models
  data-dependent phase cost drift);
* **outliers** — with small probability an instance is dilated by a large
  factor (models preemption/IO hiccups); these are what the IQR pruning in
  the folding stage must reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.util.validation import check_positive, check_probability

__all__ = ["VariabilityModel", "InstancePerturbation"]


@dataclass(frozen=True)
class InstancePerturbation:
    """Resolved perturbation for one burst instance."""

    global_scale: float
    phase_scales: np.ndarray
    is_outlier: bool

    def scale_for_phase(self, index: int) -> float:
        """Combined time-dilation factor for phase ``index``."""
        return float(self.global_scale * self.phase_scales[index])


@dataclass(frozen=True)
class VariabilityModel:
    """Parameters of the instance perturbation distribution.

    ``duration_sigma``/``phase_sigma`` are the lognormal shape parameters of
    the global and per-phase factors; 0 disables the effect.  ``outlier_prob``
    instances are additionally dilated by ``outlier_scale``.

    ``outlier_mode`` selects what an outlier dilates:

    * ``"uniform"`` — the whole instance (frequency drop, co-runner).
      Folding normalization is *invariant* to this (a property the test
      suite asserts), so uniform outliers only matter to clustering.
    * ``"phase"`` — one random phase only (page-fault burst, demand I/O
      inside a loop).  This genuinely distorts the folded curve, which is
      why the folding stage prunes duration outliers before folding.

    ``counter_sigma`` adds data-dependent event-count noise: per instance,
    per phase, the rates of *event* counters (cache misses, branch
    mispredictions, FLOPs — everything except instructions and cycles,
    which define work and time) are scaled by an independent lognormal
    factor.  This is what makes counter extrapolation ratios *estimates*
    rather than identities, as they are on real hardware.
    """

    duration_sigma: float = 0.03
    phase_sigma: float = 0.01
    outlier_prob: float = 0.01
    outlier_scale: float = 3.0
    outlier_mode: str = "uniform"
    counter_sigma: float = 0.0

    VALID_OUTLIER_MODES = ("uniform", "phase")

    def __post_init__(self) -> None:
        check_positive("duration_sigma", self.duration_sigma, strict=False)
        check_positive("phase_sigma", self.phase_sigma, strict=False)
        check_probability("outlier_prob", self.outlier_prob)
        check_positive("outlier_scale", self.outlier_scale)
        if self.outlier_scale < 1.0:
            raise ValueError(
                f"outlier_scale must be >= 1 (a dilation), got {self.outlier_scale}"
            )
        if self.outlier_mode not in self.VALID_OUTLIER_MODES:
            raise ValueError(
                f"outlier_mode must be one of {self.VALID_OUTLIER_MODES}, "
                f"got {self.outlier_mode!r}"
            )
        check_positive("counter_sigma", self.counter_sigma, strict=False)

    @classmethod
    def none(cls) -> "VariabilityModel":
        """Perfectly repeatable instances (used by exactness tests)."""
        return cls(duration_sigma=0.0, phase_sigma=0.0, outlier_prob=0.0, outlier_scale=1.0)

    def sample(self, n_phases: int, rng: np.random.Generator) -> InstancePerturbation:
        """Draw the perturbation for one instance."""
        if n_phases < 1:
            raise ValueError(f"n_phases must be >= 1, got {n_phases}")
        global_scale = 1.0
        if self.duration_sigma > 0:
            global_scale = float(rng.lognormal(mean=0.0, sigma=self.duration_sigma))
        if self.phase_sigma > 0:
            phase_scales = rng.lognormal(mean=0.0, sigma=self.phase_sigma, size=n_phases)
        else:
            phase_scales = np.ones(n_phases)
        is_outlier = bool(self.outlier_prob > 0 and rng.random() < self.outlier_prob)
        if is_outlier:
            if self.outlier_mode == "uniform":
                global_scale *= self.outlier_scale
            else:  # "phase": dilate one random phase only
                victim = int(rng.integers(0, n_phases))
                phase_scales = phase_scales.copy()
                phase_scales[victim] *= self.outlier_scale
        return InstancePerturbation(
            global_scale=global_scale,
            phase_scales=phase_scales,
            is_outlier=is_outlier,
        )

    def sample_many(
        self, n_instances: int, n_phases: int, rng: np.random.Generator
    ) -> List[InstancePerturbation]:
        """Draw perturbations for ``n_instances`` instances."""
        return [self.sample(n_phases, rng) for _ in range(n_instances)]
