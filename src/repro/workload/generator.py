"""Seeded random workload generation for sweeps and property tests.

Builds kernels with a random number of phases, random behaviours drawn from
the library (optionally perturbed), and random instruction budgets — while
recording the exact ground truth, so accuracy benches can average detection
scores over many independent kernel shapes instead of one hand-picked case.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.behavior import BEHAVIOR_LIBRARY, Behavior
from repro.source.model import SourceModel
from repro.util.rng import as_rng
from repro.workload.apps.builders import add_main_chain, make_callpath
from repro.workload.kernel import Kernel
from repro.workload.phases import PhaseSpec
from repro.workload.variability import VariabilityModel

__all__ = ["random_kernel", "random_kernel_app"]


def random_kernel(
    rng,
    n_phases: Optional[int] = None,
    min_phases: int = 2,
    max_phases: int = 6,
    total_instructions: float = 3.0e8,
    min_phase_fraction: float = 0.04,
    behavior_pool: Optional[Sequence[Behavior]] = None,
    variability: Optional[VariabilityModel] = None,
    name: str = "randk",
) -> Tuple[Kernel, SourceModel]:
    """Generate a random kernel plus its synthetic source model.

    Consecutive phases always use *different* behaviours (identical
    neighbors would merge into one ground-truth phase and make scoring
    ambiguous).  Phase instruction budgets are a random simplex draw with a
    floor of ``min_phase_fraction`` so no phase degenerates to nothing.
    """
    rng = as_rng(rng)
    if n_phases is None:
        n_phases = int(rng.integers(min_phases, max_phases + 1))
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    if not 0.0 < min_phase_fraction * n_phases < 1.0:
        raise ValueError(
            f"min_phase_fraction {min_phase_fraction} infeasible for {n_phases} phases"
        )
    pool: List[Behavior] = list(behavior_pool or BEHAVIOR_LIBRARY.values())
    if len(pool) < 2 and n_phases > 1:
        raise ValueError("behavior_pool must offer at least 2 behaviours")

    # Simplex draw with floor.
    raw = rng.dirichlet(np.ones(n_phases))
    fractions = min_phase_fraction + raw * (1.0 - min_phase_fraction * n_phases)

    source = SourceModel()
    entries = [("main", 1, 20), ("body", 30, 50)]
    for i in range(n_phases):
        entries.append((f"{name}_p{i}", 100 + 40 * i, 130 + 40 * i))
    add_main_chain(source, f"{name}.f90", entries)

    phases: List[PhaseSpec] = []
    previous: Optional[Behavior] = None
    for i in range(n_phases):
        candidates = [b for b in pool if b is not previous] or pool
        behavior = candidates[int(rng.integers(0, len(candidates)))]
        previous = behavior
        callpath = make_callpath(
            source, [("main", 10), ("body", 35 + i % 10), (f"{name}_p{i}", 110 + 40 * i)]
        )
        phases.append(
            PhaseSpec(
                name=f"{name}.p{i}.{behavior.name}",
                behavior=behavior,
                instructions=float(fractions[i] * total_instructions),
                callpath=callpath,
            )
        )
    kernel = Kernel(name=name, phases=phases, variability=variability)
    return kernel, source


def random_kernel_app(
    rng,
    iterations: int = 300,
    ranks: int = 2,
    name: str = "randapp",
    **kernel_kwargs,
):
    """Random kernel wrapped into a one-kernel application."""
    from repro.parallel.network import NetworkModel
    from repro.parallel.patterns import AllReducePattern
    from repro.workload.application import Application, CommStep, ComputeStep

    rng = as_rng(rng)
    kernel, source = random_kernel(rng, name=name, **kernel_kwargs)
    pattern = AllReducePattern(NetworkModel(), message_bytes=8.0)
    return Application(
        name=name,
        source=source,
        steps=[ComputeStep(kernel), CommStep(pattern)],
        iterations=iterations,
        ranks=ranks,
    )
