"""Instance selection and outlier pruning for folding.

Folding assumes the instances of a cluster are *repetitions of the same
computation*.  Instances dilated by external noise (preemption, I/O) have
the same counter totals but a distorted internal time axis; folding them
would smear every phase boundary.  Following the folding papers, instances
whose duration falls outside the Tukey fences of the cluster's duration
distribution are excluded before normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import FoldingError
from repro.clustering.bursts import BurstSet, ComputationBurst
from repro.observability.context import counter as _metric_counter
from repro.observability.context import span as _span
from repro.util.stats import iqr_bounds

__all__ = ["ClusterInstances", "select_instances"]


@dataclass
class ClusterInstances:
    """The burst instances of one cluster retained for folding."""

    cluster_id: int
    bursts: List[ComputationBurst]
    n_candidates: int
    n_pruned_duration: int

    def __post_init__(self) -> None:
        if not self.bursts:
            raise FoldingError(
                f"cluster {self.cluster_id}: no instances left after pruning "
                f"({self.n_candidates} candidates, {self.n_pruned_duration} pruned)"
            )
        # Accessor memoization: folding queries durations/totals once per
        # counter, from inside the per-cluster loop.  The burst list is
        # fixed after construction, so the caches never go stale.
        self._durations: Optional[np.ndarray] = None
        self._totals: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.bursts)

    def __iter__(self):
        return iter(self.bursts)

    @property
    def durations(self) -> np.ndarray:
        """Per-instance durations (seconds; memoized, treat as read-only)."""
        if self._durations is None:
            self._durations = np.array([b.duration for b in self.bursts])
        return self._durations

    @property
    def mean_duration(self) -> float:
        """Mean instance duration — the fold's time de-normalization scale."""
        return float(self.durations.mean())

    def totals(self, counter: str) -> np.ndarray:
        """Per-instance totals of ``counter`` (NaN where unmeasured —
        multiplexed instances carry only their scheduled counter set;
        memoized)."""
        cached = self._totals.get(counter)
        if cached is None:
            # np.array maps a missing probe (None) to NaN in one C-level
            # pass; end - start is then NaN whenever either side is,
            # matching ComputationBurst.delta_or_nan element-wise.
            starts = np.array(
                [b.start_counters.get(counter) for b in self.bursts],
                dtype=float,
            )
            ends = np.array(
                [b.end_counters.get(counter) for b in self.bursts],
                dtype=float,
            )
            cached = ends - starts
            self._totals[counter] = cached
        return cached

    def mean_total(self, counter: str) -> float:
        """Mean per-instance total over the instances that measured it."""
        totals = self.totals(counter)
        measured = totals[np.isfinite(totals)]
        if measured.size == 0:
            raise FoldingError(
                f"counter {counter} was measured in no instance of "
                f"cluster {self.cluster_id}"
            )
        return float(measured.mean())

    @property
    def n_samples(self) -> int:
        """Samples attached across retained instances."""
        return sum(len(b.samples) for b in self.bursts)

    def summary(self) -> Dict[str, float]:
        """Small stats dict used in reports."""
        durations = self.durations
        return {
            "instances": float(len(self.bursts)),
            "pruned": float(self.n_pruned_duration),
            "mean_duration_s": float(durations.mean()),
            "cv_duration": float(durations.std() / durations.mean()),
            "samples": float(self.n_samples),
        }


def select_instances(
    bursts: BurstSet,
    labels: np.ndarray,
    cluster_id: int,
    prune_outliers: bool = True,
    iqr_factor: float = 1.5,
    min_instances: int = 8,
) -> ClusterInstances:
    """Select cluster ``cluster_id``'s instances, pruning duration outliers.

    Raises :class:`~repro.errors.FoldingError` when fewer than
    ``min_instances`` survive — folding a handful of instances cannot
    produce a meaningful profile, and silently degrading would poison the
    downstream fit.
    """
    labels = np.asarray(labels)
    if labels.shape[0] != len(bursts):
        raise FoldingError(f"{labels.shape[0]} labels for {len(bursts)} bursts")
    with _span("select_instances", cluster_id=cluster_id):
        instances = _select_instances_impl(
            bursts, labels, cluster_id, prune_outliers, iqr_factor, min_instances
        )
    _metric_counter("folding.instances_selected").inc(len(instances.bursts))
    _metric_counter("folding.instances_pruned").inc(instances.n_pruned_duration)
    return instances


def _select_instances_impl(
    bursts: BurstSet,
    labels: np.ndarray,
    cluster_id: int,
    prune_outliers: bool,
    iqr_factor: float,
    min_instances: int,
) -> ClusterInstances:
    member_idx = np.flatnonzero(labels == cluster_id)
    if member_idx.size == 0:
        raise FoldingError(f"cluster {cluster_id} has no members")
    members = [bursts[int(i)] for i in member_idx]
    n_candidates = len(members)

    n_pruned = 0
    if prune_outliers and n_candidates >= 4:
        durations = np.array([b.duration for b in members])
        low, high = iqr_bounds(durations, factor=iqr_factor)
        keep = (durations >= low) & (durations <= high)
        n_pruned = int(np.sum(~keep))
        members = [b for b, k in zip(members, keep) if k]

    if len(members) < min_instances:
        raise FoldingError(
            f"cluster {cluster_id}: only {len(members)} instances after "
            f"pruning (need >= {min_instances})"
        )
    return ClusterInstances(
        cluster_id=cluster_id,
        bursts=members,
        n_candidates=n_candidates,
        n_pruned_duration=n_pruned,
    )
