"""Sample folding: many instances → one synthetic normalized instance.

For a sample taken at time ``t`` inside burst instance ``i`` (which spans
``[t0, t1]`` with counter snapshots ``C(t0)``/``C(t1)`` from the probes):

* normalized time     ``x = (t - t0) / (t1 - t0)``
* normalized progress ``y = (C(t) - C(t0)) / (C(t1) - C(t0))``

Both land in [0, 1] (up to quantization), and — because every instance does
the same work — the points of *all* instances lie on the same curve: the
cumulative fraction of the counter as a function of normalized time.  Its
derivative is the counter rate profile, and its breakpoints are the phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import FoldingError
from repro.clustering.bursts import ComputationBurst
from repro.folding.instances import ClusterInstances
from repro.observability.context import counter as _metric_counter
from repro.observability.context import span as _span

__all__ = ["FoldedCounter", "fold_cluster"]


@dataclass
class FoldedCounter:
    """Folded sample set of one counter over one cluster.

    Arrays are index-aligned and sorted by ``x``.  ``instance_ids`` maps
    each point back to its source instance (needed by the monotonicity
    filter and by convergence sweeps).
    """

    counter: str
    x: np.ndarray
    y: np.ndarray
    instance_ids: np.ndarray
    n_instances: int
    mean_duration: float
    mean_total: float

    def __post_init__(self) -> None:
        if not (self.x.shape == self.y.shape == self.instance_ids.shape):
            raise FoldingError(
                f"{self.counter}: misaligned folded arrays "
                f"({self.x.shape}, {self.y.shape}, {self.instance_ids.shape})"
            )
        if self.mean_duration <= 0:
            raise FoldingError(f"{self.counter}: non-positive mean duration")
        if self.mean_total <= 0:
            raise FoldingError(f"{self.counter}: non-positive mean total")

    @property
    def n_points(self) -> int:
        """Number of folded samples."""
        return int(self.x.size)

    def replaced(self, keep: np.ndarray) -> "FoldedCounter":
        """New folded set restricted to the boolean mask ``keep``."""
        return FoldedCounter(
            counter=self.counter,
            x=self.x[keep],
            y=self.y[keep],
            instance_ids=self.instance_ids[keep],
            n_instances=self.n_instances,
            mean_duration=self.mean_duration,
            mean_total=self.mean_total,
        )

    def subset_instances(self, instance_ids: Sequence[int]) -> "FoldedCounter":
        """Folded set using only samples from ``instance_ids`` (sweeps).

        Constructed in one shot with the subset's instance count —
        mutating ``n_instances`` after construction would bypass
        ``__post_init__`` validation.
        """
        ids = [int(i) for i in instance_ids]
        wanted = np.isin(self.instance_ids, np.asarray(ids))
        return FoldedCounter(
            counter=self.counter,
            x=self.x[wanted],
            y=self.y[wanted],
            instance_ids=self.instance_ids[wanted],
            n_instances=len(set(ids)),
            mean_duration=self.mean_duration,
            mean_total=self.mean_total,
        )

    def density(self, n_bins: int = 20) -> np.ndarray:
        """Samples per normalized-time bin (coverage diagnostic)."""
        if n_bins < 1:
            raise FoldingError(f"n_bins must be >= 1, got {n_bins}")
        hist, _ = np.histogram(self.x, bins=n_bins, range=(0.0, 1.0))
        return hist


def fold_cluster(
    instances: ClusterInstances,
    counters: Sequence[str],
    min_points: int = 16,
    required: Optional[Sequence[str]] = None,
    drops: Optional[Dict[str, str]] = None,
) -> Dict[str, FoldedCounter]:
    """Fold the samples of ``instances`` for each counter in ``counters``.

    Samples whose per-instance counter span is non-positive (a counter that
    did not advance — possible for rare events like TLB misses in a
    cache-resident burst) are skipped for that counter only.  A counter
    ending with fewer than ``min_points`` folded samples is dropped from
    the result — unless it is listed in ``required`` (default: all
    requested counters), in which case a
    :class:`~repro.errors.FoldingError` is raised.

    When ``drops`` is given (a mutable dict), every optional counter
    dropped from the result is recorded there as ``counter -> reason`` so
    the caller's diagnostics can report the degradation instead of losing
    it silently.
    """
    if not counters:
        raise FoldingError("no counters requested for folding")
    # Callers may pass a pre-populated drops dict (accumulating across
    # clusters); only drops added by *this* call count toward the metric.
    n_drops_before = len(drops) if drops is not None else 0
    with _span(
        "fold", n_instances=len(instances), n_counters=len(counters)
    ):
        out = _fold_cluster_impl(instances, counters, min_points, required, drops)
    _metric_counter("folding.folds").inc(len(out))
    if drops is not None and len(drops) > n_drops_before:
        _metric_counter("folding.dropped_counters").inc(
            len(drops) - n_drops_before
        )
    return out


def _fold_cluster_impl(
    instances: ClusterInstances,
    counters: Sequence[str],
    min_points: int,
    required: Optional[Sequence[str]],
    drops: Optional[Dict[str, str]],
) -> Dict[str, FoldedCounter]:
    required_set = set(counters if required is None else required)
    unknown_required = required_set - set(counters)
    if unknown_required:
        raise FoldingError(
            f"required counters not in requested set: {sorted(unknown_required)}"
        )
    # Vectorized fold: all samples of all instances concatenate into one
    # flat (instance, sample-time)-ordered array set, per-burst scalars
    # (t_start, duration, probe start/span) broadcast over it with
    # ``np.repeat``, and every counter folds with a single subtract/
    # divide.  Element order and arithmetic match the historical scalar
    # loop exactly, so outputs are bit-identical (tested on the demo
    # trace in tests/test_folding.py).
    bursts = list(instances)
    counts = np.array([len(b.samples) for b in bursts], dtype=np.intp)
    total_samples = int(counts.sum())
    if total_samples:
        times_all = ComputationBurst.batch_sample_times(bursts)
        t0_rep = np.repeat(np.array([b.t_start for b in bursts]), counts)
        dur_rep = np.repeat(np.array([b.duration for b in bursts]), counts)
        x_all = (times_all - t0_rep) / dur_rep
        inst_all = np.repeat(np.arange(len(bursts), dtype=int), counts)
        all_values = ComputationBurst.batch_sample_values_all(bursts, counters)

    out: Dict[str, FoldedCounter] = {}
    for counter in counters:
        if total_samples:
            starts_raw = [b.start_counters.get(counter) for b in bursts]
            ends_raw = [b.end_counters.get(counter) for b in bursts]
            # None (missing probe) maps to NaN during array construction;
            # the Python-level presence scan only runs when some probe
            # was NaN-or-None, because a *genuinely* NaN probe value must
            # keep has_probe=True (see the semantics note below).
            starts = np.array(starts_raw, dtype=float)
            ends = np.array(ends_raw, dtype=float)
            if np.isnan(starts).any() or np.isnan(ends).any():
                has_probe = np.array(
                    [s is not None and e is not None
                     for s, e in zip(starts_raw, ends_raw)],
                    dtype=bool,
                )
            else:
                has_probe = np.True_
            spans = ends - starts
            # Historical semantics: a burst folds this counter when both
            # probes carry it and the span is not <= 0 (a NaN span — a
            # corrupt probe — passes through and yields NaN y, exactly
            # like the scalar loop did).
            valid = has_probe & ~(spans <= 0)
            if all_values is not None:
                values_all, present_all = all_values[counter]
            else:
                values_all, present_all = (
                    ComputationBurst.batch_sample_values(bursts, counter)
                )
            if valid.all():
                keep = present_all
            else:
                keep = present_all & np.repeat(valid, counts)
            if keep.all():
                x = x_all
                y = (values_all - np.repeat(starts, counts)) / np.repeat(
                    spans, counts
                )
                inst = inst_all
            else:
                x = x_all[keep]
                y = (values_all[keep] - np.repeat(starts, counts)[keep]) / (
                    np.repeat(spans, counts)[keep]
                )
                inst = inst_all[keep]
        else:
            x = np.empty(0)
            y = np.empty(0)
            inst = np.empty(0, dtype=int)
        if x.size < min_points:
            if counter in required_set:
                raise FoldingError(
                    f"counter {counter}: only {x.size} folded samples "
                    f"(need >= {min_points}); increase run length or sampling rate"
                )
            # optional counter with too little support: drop it
            if drops is not None:
                drops[counter] = (
                    f"only {x.size} folded samples (need >= {min_points})"
                )
            continue
        order = np.argsort(x, kind="stable")
        totals = instances.totals(counter)
        positive = totals[np.isfinite(totals) & (totals > 0)]
        if positive.size == 0:
            if counter in required_set:
                raise FoldingError(f"counter {counter}: zero events in every instance")
            if drops is not None:
                drops[counter] = "zero events in every instance"
            continue
        out[counter] = FoldedCounter(
            counter=counter,
            x=x[order],
            y=y[order],
            instance_ids=inst[order],
            n_instances=len(instances),
            mean_duration=instances.mean_duration,
            mean_total=float(positive.mean()),
        )
    return out
