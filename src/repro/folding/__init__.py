"""The folding mechanism (Servat et al.).

Folding combines minimal instrumentation with coarse-grain sampling: all
samples captured across the many instances of one burst cluster are mapped
into a single *synthetic instance* on normalized time [0, 1], with each
counter normalized to its per-instance total.  A handful of samples per
instance times thousands of instances yields a dense picture of the burst's
internal evolution at negligible tracing cost.

Stages, each its own module:

* :mod:`repro.folding.instances` — select a cluster's burst instances and
  prune duration outliers (perturbed iterations would smear the fold);
* :mod:`repro.folding.fold` — normalize samples into folded sample sets;
* :mod:`repro.folding.filtering` — reject samples violating the physical
  invariants (range, per-instance monotonicity) that quantization and
  jitter can break;
* :mod:`repro.folding.callstack` — fold call-stack samples for the
  phase-to-source mapping;
* :mod:`repro.folding.reconstruct` — de-normalize a fitted model back to
  absolute time and event rates.
"""

from repro.folding.instances import ClusterInstances, select_instances
from repro.folding.fold import FoldedCounter, fold_cluster
from repro.folding.filtering import FilterReport, clip_to_unit_range, enforce_instance_monotonicity
from repro.folding.callstack import FoldedCallstacks, fold_callstacks
from repro.folding.reconstruct import Reconstruction

__all__ = [
    "ClusterInstances",
    "select_instances",
    "FoldedCounter",
    "fold_cluster",
    "FilterReport",
    "clip_to_unit_range",
    "enforce_instance_monotonicity",
    "FoldedCallstacks",
    "fold_callstacks",
    "Reconstruction",
]
