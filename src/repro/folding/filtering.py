"""Physical-invariant filters on folded samples.

Two invariants hold for exact data and are only violated by measurement
imperfections (counter quantization, clock skew between the sample and the
probes):

1. **Range** — folded coordinates lie in [0, 1].
2. **Per-instance monotonicity** — within one instance, accumulated
   counters are non-decreasing, so folded ``y`` must be non-decreasing in
   ``x`` among samples of the same instance.

Filtering enforces both, reporting what was dropped — the ablation bench
(TAB-5) shows fit quality with these filters disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FoldingError
from repro.folding.fold import FoldedCounter

__all__ = ["FilterReport", "clip_to_unit_range", "enforce_instance_monotonicity"]


@dataclass(frozen=True)
class FilterReport:
    """Outcome of one filter application."""

    filter_name: str
    n_before: int
    n_dropped: int

    @property
    def n_after(self) -> int:
        """Points remaining after the filter."""
        return self.n_before - self.n_dropped

    @property
    def drop_fraction(self) -> float:
        """Fraction of points dropped."""
        return self.n_dropped / self.n_before if self.n_before else 0.0


def clip_to_unit_range(
    folded: FoldedCounter, tolerance: float = 0.02
) -> "tuple[FoldedCounter, FilterReport]":
    """Drop samples outside [0,1] beyond ``tolerance``; clamp the rest.

    Quantization can push a sample a hair outside the unit square; samples
    *far* outside indicate a mismatched instance (e.g. clustering error)
    and are discarded.
    """
    if tolerance < 0:
        raise FoldingError(f"tolerance must be >= 0, got {tolerance}")
    ok = (
        (folded.x >= -tolerance)
        & (folded.x <= 1.0 + tolerance)
        & (folded.y >= -tolerance)
        & (folded.y <= 1.0 + tolerance)
    )
    report = FilterReport(
        filter_name="unit_range",
        n_before=folded.n_points,
        n_dropped=int(np.sum(~ok)),
    )
    kept = folded.replaced(ok)
    np.clip(kept.x, 0.0, 1.0, out=kept.x)
    np.clip(kept.y, 0.0, 1.0, out=kept.y)
    return kept, report


def enforce_instance_monotonicity(
    folded: FoldedCounter, tolerance: float = 1e-9
) -> "tuple[FoldedCounter, FilterReport]":
    """Drop samples breaking within-instance monotonicity.

    For each instance, samples are scanned in ``x`` order keeping a running
    maximum of ``y``; a sample whose ``y`` falls more than ``tolerance``
    below the running maximum is dropped.
    """
    if tolerance < 0:
        raise FoldingError(f"tolerance must be >= 0, got {tolerance}")
    keep = np.ones(folded.n_points, dtype=bool)
    # Arrays are globally x-sorted, so a stable pass per instance works on
    # the positions of that instance's points.
    for instance in np.unique(folded.instance_ids):
        positions = np.flatnonzero(folded.instance_ids == instance)
        running = -np.inf
        for pos in positions:
            y = folded.y[pos]
            if y < running - tolerance:
                keep[pos] = False
            else:
                running = max(running, y)
    report = FilterReport(
        filter_name="instance_monotonicity",
        n_before=folded.n_points,
        n_dropped=int(np.sum(~keep)),
    )
    return folded.replaced(keep), report
