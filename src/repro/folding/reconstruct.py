"""De-normalization: fitted model → absolute time and event rates.

The fit lives on the normalized unit square; analysts want seconds and
events/second.  A :class:`Reconstruction` wraps a fitted model with the
fold's de-normalization scales (mean instance duration and mean counter
total) and exposes the absolute-time view: instantaneous rate profiles and
per-segment rates — the series the paper's figures plot (e.g. MIPS along
the synthetic instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import FoldingError
from repro.folding.fold import FoldedCounter

__all__ = ["Reconstruction"]


@dataclass(frozen=True)
class Reconstruction:
    """Absolute-units view of a fitted folded counter.

    ``model`` is any object with the :class:`~repro.fitting.pwlr.PiecewiseLinearModel`
    interface (``predict``, ``slope_at``, ``segments()``).
    """

    counter: str
    model: object
    mean_duration: float
    mean_total: float

    def __post_init__(self) -> None:
        if self.mean_duration <= 0:
            raise FoldingError(f"mean_duration must be positive: {self.mean_duration}")
        if self.mean_total <= 0:
            raise FoldingError(f"mean_total must be positive: {self.mean_total}")

    @classmethod
    def from_folded(cls, folded: FoldedCounter, model) -> "Reconstruction":
        """Build from a folded set and the model fitted to it."""
        return cls(
            counter=folded.counter,
            model=model,
            mean_duration=folded.mean_duration,
            mean_total=folded.mean_total,
        )

    # ------------------------------------------------------------------
    @property
    def mean_rate(self) -> float:
        """Whole-burst mean rate (events/second)."""
        return self.mean_total / self.mean_duration

    def time_at(self, x) -> np.ndarray:
        """Absolute time (seconds into the synthetic instance) at ``x``."""
        return np.asarray(x, dtype=float) * self.mean_duration

    def events_at(self, x) -> np.ndarray:
        """Accumulated events at normalized time ``x``."""
        return self.model.predict(x) * self.mean_total

    def rate_at(self, x) -> np.ndarray:
        """Instantaneous event rate (events/second) at normalized ``x``."""
        return self.model.slope_at(x) * self.mean_rate

    def segment_rates(self) -> List[Tuple[float, float, float]]:
        """Per-segment ``(t_start_s, t_end_s, rate_events_per_s)``."""
        out: List[Tuple[float, float, float]] = []
        for x0, x1, slope in self.model.segments():
            out.append(
                (
                    x0 * self.mean_duration,
                    x1 * self.mean_duration,
                    slope * self.mean_rate,
                )
            )
        return out

    def profile(self, n_grid: int = 256) -> Tuple[np.ndarray, np.ndarray]:
        """``(time_s, rate)`` series for plotting the rate profile."""
        if n_grid < 2:
            raise FoldingError(f"n_grid must be >= 2, got {n_grid}")
        x = np.linspace(0.0, 1.0, n_grid)
        return self.time_at(x), self.rate_at(x)
