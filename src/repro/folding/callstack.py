"""Folding of call-stack samples.

Counters tell *what* the processor did; call stacks tell *where*.  Folding
the sampled stacks onto the same normalized time axis places routines and
source lines along the synthetic instance, which is what lets the phase
stage translate "segment [0.31, 0.58]" into "the stencil loop in
btrop_operator (solvers.f90:160)".
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FoldingError
from repro.folding.instances import ClusterInstances
from repro.trace.records import FrameTriple

__all__ = ["FoldedCallstacks", "fold_callstacks"]


@dataclass
class FoldedCallstacks:
    """Call-stack samples of one cluster on normalized time.

    ``x`` is sorted; ``stacks[i]`` is the frame tuple of sample ``i``
    (outermost first; empty tuples — in-MPI samples — are excluded at
    construction).
    """

    x: np.ndarray
    stacks: List[Tuple[FrameTriple, ...]]
    n_instances: int

    def __post_init__(self) -> None:
        if self.x.size != len(self.stacks):
            raise FoldingError(
                f"{self.x.size} positions vs {len(self.stacks)} stacks"
            )
        if any(not s for s in self.stacks):
            raise FoldingError("folded call stacks must be non-empty")

    @property
    def n_points(self) -> int:
        """Number of folded stack samples."""
        return int(self.x.size)

    # ------------------------------------------------------------------
    def _window(self, x0: float, x1: float) -> np.ndarray:
        if not 0.0 <= x0 < x1 <= 1.0 + 1e-12:
            raise FoldingError(f"invalid normalized window [{x0}, {x1}]")
        lo = int(np.searchsorted(self.x, x0, side="left"))
        hi = int(np.searchsorted(self.x, x1, side="right"))
        return np.arange(lo, hi)

    def n_samples_in(self, x0: float, x1: float) -> int:
        """Number of stack samples inside normalized window ``[x0, x1]``."""
        return int(self._window(x0, x1).size)

    def routine_shares(self, x0: float, x1: float) -> Dict[str, float]:
        """Leaf-routine occurrence shares inside ``[x0, x1]``."""
        idx = self._window(x0, x1)
        if idx.size == 0:
            return {}
        tally: TallyCounter = TallyCounter()
        for i in idx:
            routine, _path, _line = self.stacks[i][-1]
            tally[routine] += 1
        total = float(idx.size)
        return {name: count / total for name, count in tally.most_common()}

    def line_shares(self, x0: float, x1: float) -> Dict[Tuple[str, int], float]:
        """Leaf ``(file, line)`` shares inside ``[x0, x1]``."""
        idx = self._window(x0, x1)
        if idx.size == 0:
            return {}
        tally: TallyCounter = TallyCounter()
        for i in idx:
            _routine, path, line = self.stacks[i][-1]
            tally[(path, line)] += 1
        total = float(idx.size)
        return {key: count / total for key, count in tally.most_common()}

    def dominant_routine(self, x0: float, x1: float) -> Optional[str]:
        """Most frequent leaf routine in the window (None if no samples)."""
        shares = self.routine_shares(x0, x1)
        if not shares:
            return None
        return max(shares, key=shares.get)

    def dominant_sequence(self, n_bins: int = 50) -> List[Optional[str]]:
        """Dominant leaf routine per normalized-time bin (gantt strip)."""
        if n_bins < 1:
            raise FoldingError(f"n_bins must be >= 1, got {n_bins}")
        out: List[Optional[str]] = []
        edges = np.linspace(0.0, 1.0, n_bins + 1)
        for lo, hi in zip(edges[:-1], edges[1:]):
            out.append(self.dominant_routine(float(lo), float(min(hi, 1.0))))
        return out

    def common_prefix(self, x0: float, x1: float) -> Tuple[FrameTriple, ...]:
        """Longest call-path prefix shared by all samples in the window.

        Identifies the enclosing routine of a phase even when the leaf
        alternates between helpers.
        """
        idx = self._window(x0, x1)
        if idx.size == 0:
            return ()
        prefix = list(self.stacks[idx[0]])
        for i in idx[1:]:
            stack = self.stacks[i]
            keep = 0
            for a, b in zip(prefix, stack):
                if a != b:
                    break
                keep += 1
            prefix = prefix[:keep]
            if not prefix:
                break
        return tuple(prefix)


def fold_callstacks(instances: ClusterInstances) -> FoldedCallstacks:
    """Fold the call-stack dimension of ``instances``' samples.

    In-MPI samples (empty stacks) are skipped — they cannot occur strictly
    inside a burst in a consistent trace, but a real unwinder occasionally
    fails, and those failures must not poison the mapping.
    """
    xs: List[float] = []
    stacks: List[Tuple[FrameTriple, ...]] = []
    for burst in instances:
        duration = burst.duration
        for sample in burst.samples:
            if not sample.frames:
                continue
            xs.append((sample.time - burst.t_start) / duration)
            stacks.append(sample.frames)
    if not xs:
        raise FoldingError(
            "no call-stack samples available in this cluster's instances"
        )
    x = np.asarray(xs)
    order = np.argsort(x, kind="stable")
    return FoldedCallstacks(
        x=x[order],
        stacks=[stacks[int(i)] for i in order],
        n_instances=len(instances),
    )
