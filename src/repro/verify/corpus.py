"""Seeded corpora for the differential runner.

Every generator takes a seed and a ``full`` flag and returns a list of
named cases.  The ordinary cases come from smooth random draws; the
adversarial ones target the inputs the ISSUE history has shown fast
paths get wrong: duplicate points, NaN/inf counter values, single-burst
clusters, breakpoints pinned to the candidate-grid edges, zero-slope
plateaus, and cell-edge point geometries.

All randomness flows through ``numpy.random.default_rng(seed)`` so a
reported divergence replays exactly from its seed (``repro selftest
--seed N --suite NAME``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.bursts import ComputationBurst
from repro.fitting.pwlr import PiecewiseLinearModel
from repro.folding.instances import ClusterInstances
from repro.trace.records import SampleRecord

__all__ = [
    "PWLCase",
    "CloudCase",
    "BurstCase",
    "BoundaryCase",
    "pwl_datasets",
    "point_clouds",
    "grid_edge_cloud",
    "burst_clusters",
    "boundary_sets",
    "random_models",
    "write_case_traces",
]


# ----------------------------------------------------------------------
# PWL fitting datasets
# ----------------------------------------------------------------------
@dataclass
class PWLCase:
    name: str
    x: np.ndarray
    y: np.ndarray
    breakpoints: Tuple[float, ...]
    anchor: bool = True
    monotone: bool = True


def _pwl_curve(rng: np.random.Generator, breakpoints: Sequence[float], x: np.ndarray):
    knots = np.concatenate([[0.0], np.asarray(breakpoints), [1.0]])
    slopes = rng.uniform(0.2, 3.0, size=knots.size - 1)
    slopes /= float(np.sum(slopes * np.diff(knots)))
    y = np.interp(x, knots, np.concatenate([[0.0], np.cumsum(slopes * np.diff(knots))]))
    return y


def pwl_datasets(seed: int, full: bool = False) -> List[PWLCase]:
    """Well-conditioned fitting problems plus adversarial shapes."""
    rng = np.random.default_rng(seed)
    cases: List[PWLCase] = []
    n_random = 6 if full else 3
    for i in range(n_random):
        n_bp = int(rng.integers(0, 4))
        bp = np.sort(rng.uniform(0.1, 0.9, size=n_bp))
        while bp.size > 1 and np.min(np.diff(bp)) < 0.08:
            bp = np.sort(rng.uniform(0.1, 0.9, size=n_bp))
        x = rng.uniform(0.0, 1.0, size=160)
        y = _pwl_curve(rng, bp, x) + rng.normal(0.0, 0.01, size=x.size)
        cases.append(
            PWLCase(
                name=f"random{i}",
                x=x,
                y=y,
                breakpoints=tuple(float(b) for b in bp),
                monotone=bool(i % 2 == 0),
            )
        )
    # Duplicate abscissae: every x appears several times.
    grid = np.repeat(np.linspace(0.0, 1.0, 40), 4)
    cases.append(
        PWLCase(
            name="duplicate_x",
            x=grid,
            y=_pwl_curve(rng, [0.4], grid) + rng.normal(0.0, 0.01, grid.size),
            breakpoints=(0.4,),
        )
    )
    # Zero-slope plateau in the middle segment.
    x = rng.uniform(0.0, 1.0, size=200)
    y = np.where(x < 0.35, x / 0.35 * 0.5, np.where(x < 0.65, 0.5, 0.5 + (x - 0.65) / 0.35 * 0.5))
    cases.append(
        PWLCase(
            name="plateau",
            x=x,
            y=y + rng.normal(0.0, 0.005, x.size),
            breakpoints=(0.35, 0.65),
        )
    )
    # Breakpoints at the candidate-grid edges (min_separation = 0.01).
    x = rng.uniform(0.0, 1.0, size=240)
    cases.append(
        PWLCase(
            name="edge_breakpoints",
            x=x,
            y=_pwl_curve(rng, [0.01, 0.99], x) + rng.normal(0.0, 0.01, x.size),
            breakpoints=(0.01, 0.99),
        )
    )
    # Constant y: the monotone fit should go all-zero slopes.
    x = rng.uniform(0.0, 1.0, size=80)
    cases.append(
        PWLCase(name="flat", x=x, y=np.full(x.size, 0.3), breakpoints=(0.5,), anchor=False)
    )
    return cases


# ----------------------------------------------------------------------
# point clouds for clustering / eps estimation
# ----------------------------------------------------------------------
@dataclass
class CloudCase:
    name: str
    points: np.ndarray
    eps: float
    min_pts: int


def _safe_eps(points: np.ndarray, target: float) -> float:
    """An eps near ``target`` sitting mid-gap in the pairwise-distance
    distribution, so oracle and optimized membership tests (which use
    different fp arithmetic) cannot disagree on boundary pairs."""
    diff = points[:, None, :] - points[None, :, :]
    dists = np.unique(np.sqrt(np.sum(diff * diff, axis=-1)))
    below = dists[dists <= target]
    above = dists[dists > target]
    lo = float(below[-1]) if below.size else 0.0
    hi = float(above[0]) if above.size else target * 2.0
    return (lo + hi) / 2.0


def point_clouds(seed: int, full: bool = False) -> List[CloudCase]:
    """Blobby geometries with fp-safe eps, plus adversarial layouts."""
    rng = np.random.default_rng(seed)
    cases: List[CloudCase] = []
    n_random = 4 if full else 2
    for i in range(n_random):
        d = int(rng.integers(2, 5))
        centers = rng.uniform(-8.0, 8.0, size=(int(rng.integers(2, 5)), d))
        pts = np.concatenate(
            [c + rng.normal(0.0, 0.3, size=(int(rng.integers(20, 50)), d)) for c in centers]
        )
        pts = np.concatenate([pts, rng.uniform(-10.0, 10.0, size=(6, d))])  # noise
        cases.append(
            CloudCase(f"blobs{i}", pts, _safe_eps(pts, 1.0), min_pts=int(rng.integers(3, 7)))
        )
    # Exact duplicates: each of a handful of sites repeated many times.
    sites = rng.uniform(-3.0, 3.0, size=(5, 3))
    dup = np.repeat(sites, 12, axis=0)
    cases.append(CloudCase("duplicates", dup, _safe_eps(dup, 0.5), min_pts=8))
    # One tight cluster, everything core.
    tight = rng.normal(0.0, 0.05, size=(40, 2))
    cases.append(CloudCase("single_cluster", tight, _safe_eps(tight, 0.5), min_pts=4))
    # Border points reachable from two clusters (chain geometry).
    line = np.linspace(0.0, 6.0, 30)[:, None] * np.array([[1.0, 0.0]])
    chain = np.concatenate([line, line + rng.normal(0.0, 0.01, size=line.shape)])
    cases.append(CloudCase("chain", chain, _safe_eps(chain, 0.3), min_pts=4))
    return cases


def grid_edge_cloud(seed: int, n: int = 400, eps: float = 0.25) -> CloudCase:
    """Points on exact multiples of ``eps`` — cell-edge geometry where
    many pairwise distances equal eps exactly.  Used only for the
    grid-vs-blocked suite (identical arithmetic on both sides), where the
    boundary cases are exactly what must agree."""
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 12, size=(n, 2)).astype(float) * eps
    return CloudCase("grid_edge", pts, eps, min_pts=6)


# ----------------------------------------------------------------------
# burst clusters for folding
# ----------------------------------------------------------------------
@dataclass
class BurstCase:
    name: str
    instances: ClusterInstances
    counters: Tuple[str, ...]
    min_points: int = 16
    required: Optional[Tuple[str, ...]] = None
    #: set for cases where fold_cluster must raise for a required counter
    expect_error: bool = False


def _make_burst(
    rng: np.random.Generator,
    rank: int,
    index: int,
    t0: float,
    duration: float,
    counters: Sequence[str],
    n_samples: int,
    start_override: Optional[Dict[str, float]] = None,
    end_override: Optional[Dict[str, float]] = None,
    drop_probe: Sequence[str] = (),
    sample_mutator=None,
) -> ComputationBurst:
    starts = {c: float(rng.uniform(0.0, 1e6)) for c in counters}
    spans = {c: float(rng.uniform(1e4, 1e6)) for c in counters}
    ends = {c: starts[c] + spans[c] for c in counters}
    if start_override:
        starts.update(start_override)
    if end_override:
        ends.update(end_override)
    for c in drop_probe:
        ends.pop(c, None)
    times = np.sort(rng.uniform(t0, t0 + duration, size=n_samples))
    samples = []
    for i, t in enumerate(times):
        frac = (t - t0) / duration
        values = {c: starts.get(c, 0.0) + frac * spans[c] for c in counters}
        if sample_mutator is not None:
            values = sample_mutator(i, values)
            if values is None:
                continue
        samples.append(SampleRecord(rank=rank, time=float(t), counters=values))
    return ComputationBurst(
        rank=rank,
        index=index,
        t_start=t0,
        t_end=t0 + duration,
        start_counters=starts,
        end_counters=ends,
        samples=samples,
    )


def _cluster(bursts: List[ComputationBurst], cluster_id: int = 0) -> ClusterInstances:
    return ClusterInstances(
        cluster_id=cluster_id,
        bursts=bursts,
        n_candidates=len(bursts),
        n_pruned_duration=0,
    )


def burst_clusters(seed: int, full: bool = False) -> List[BurstCase]:
    """Folding inputs: clean clusters plus every probe/sample pathology."""
    rng = np.random.default_rng(seed)
    counters = ("PAPI_TOT_INS", "PAPI_L2_TCM")
    cases: List[BurstCase] = []

    def bursts(n, **kw):
        return [
            _make_burst(
                rng, rank=i % 2, index=i, t0=10.0 * i, duration=float(rng.uniform(0.5, 2.0)),
                counters=counters, n_samples=int(rng.integers(8, 20)), **kw
            )
            for i in range(n)
        ]

    cases.append(BurstCase("dense", _cluster(bursts(8 if not full else 16)), counters))

    # NaN probe value: span NaN, folded y all-NaN for that burst (kept).
    group = bursts(5)
    group[2] = _make_burst(
        rng, 0, 2, 20.0, 1.0, counters, 12,
        start_override={"PAPI_L2_TCM": float("nan")},
    )
    cases.append(BurstCase("nan_probe", _cluster(group), counters))

    # Missing end probe for one counter on one burst: burst skipped there.
    group = bursts(5)
    group[1] = _make_burst(rng, 1, 1, 10.0, 1.0, counters, 12, drop_probe=("PAPI_L2_TCM",))
    cases.append(BurstCase("missing_probe", _cluster(group), counters))

    # Zero span: the counter did not advance in one burst.
    group = bursts(5)
    start = float(rng.uniform(0.0, 1e6))
    group[3] = _make_burst(
        rng, 1, 3, 30.0, 1.0, counters, 12,
        start_override={"PAPI_L2_TCM": start},
        end_override={"PAPI_L2_TCM": start},
    )
    cases.append(BurstCase("zero_span", _cluster(group), counters))

    # Inf end probe: inf span and inf totals (excluded from mean_total).
    group = bursts(5)
    group[0] = _make_burst(
        rng, 0, 0, 0.0, 1.0, counters, 12,
        end_override={"PAPI_L2_TCM": float("inf")},
    )
    cases.append(BurstCase("inf_probe", _cluster(group), counters))

    # Samples missing a counter key / carrying NaN values.
    def drop_every_third(i, values):
        if i % 3 == 0:
            values = dict(values)
            values.pop("PAPI_L2_TCM")
        return values

    def nan_every_fourth(i, values):
        if i % 4 == 0:
            values = dict(values)
            values["PAPI_L2_TCM"] = float("nan")
        return values

    cases.append(
        BurstCase("sparse_samples", _cluster(bursts(6, sample_mutator=drop_every_third)), counters)
    )
    cases.append(
        BurstCase("nan_samples", _cluster(bursts(6, sample_mutator=nan_every_fourth)), counters)
    )

    # Single-burst cluster: folding must work from one instance.
    solo = _make_burst(rng, 0, 0, 5.0, 1.5, counters, 40)
    cases.append(BurstCase("single_burst", _cluster([solo]), counters))

    # Too few points for an *optional* counter: dropped, not fatal.
    few = bursts(2)
    cases.append(
        BurstCase(
            "too_few_optional",
            _cluster(few),
            counters,
            min_points=10_000,
            required=(),
        )
    )
    # Too few points for a *required* counter: both sides must refuse.
    cases.append(
        BurstCase(
            "too_few_required",
            _cluster(bursts(2)),
            counters,
            min_points=10_000,
            expect_error=True,
        )
    )
    return cases


# ----------------------------------------------------------------------
# boundary matching
# ----------------------------------------------------------------------
@dataclass
class BoundaryCase:
    name: str
    detected: Tuple[float, ...]
    truth: Tuple[float, ...]
    tolerance: float


def boundary_sets(seed: int, full: bool = False) -> List[BoundaryCase]:
    rng = np.random.default_rng(seed)
    cases: List[BoundaryCase] = []
    n_random = 24 if full else 10
    for i in range(n_random):
        tru = np.sort(rng.uniform(0.05, 0.95, size=int(rng.integers(1, 6))))
        det = tru + rng.normal(0.0, 0.015, size=tru.size)
        if rng.random() < 0.5 and det.size > 1:
            det = det[:-1]  # a miss
        if rng.random() < 0.5:
            det = np.append(det, rng.uniform(0.0, 1.0))  # a spurious one
        cases.append(
            BoundaryCase(f"random{i}", tuple(det.tolist()), tuple(tru.tolist()), 0.02)
        )
    # The greedy-killer: nearest-first matching pairs (0.510, 0.512) and
    # loses the second feasible match; the optimum pairs outward.
    cases.append(BoundaryCase("greedy_trap", (0.510, 0.530), (0.505, 0.512), 0.02))
    # Dense overlapping window where order of consideration matters.
    cases.append(
        BoundaryCase("pileup", (0.50, 0.51, 0.52), (0.495, 0.515, 0.535), 0.02)
    )
    cases.append(BoundaryCase("empty_truth", (0.2, 0.8), (), 0.02))
    cases.append(BoundaryCase("empty_detected", (), (0.3,), 0.02))
    return cases


# ----------------------------------------------------------------------
# fitted models for evaluation-contract checks
# ----------------------------------------------------------------------
def random_models(seed: int, full: bool = False) -> List[PiecewiseLinearModel]:
    rng = np.random.default_rng(seed)
    models: List[PiecewiseLinearModel] = []
    for i in range(12 if full else 6):
        n_bp = int(rng.integers(0, 5))
        bp = np.sort(rng.uniform(0.05, 0.95, size=n_bp))
        while bp.size > 1 and np.min(np.diff(bp)) < 0.03:
            bp = np.sort(rng.uniform(0.05, 0.95, size=n_bp))
        slopes = rng.uniform(0.0, 3.0, size=n_bp + 1)
        if i % 3 == 0 and slopes.size > 1:
            slopes[slopes.size // 2] = 0.0  # zero-slope segment
        models.append(
            PiecewiseLinearModel(
                breakpoints=bp,
                slopes=slopes,
                intercept=float(rng.normal(0.0, 0.05)),
                sse=0.0,
                n_points=100,
            )
        )
    return models


# ----------------------------------------------------------------------
# end-to-end traces
# ----------------------------------------------------------------------
def write_case_traces(seed: int, directory: str, n: int = 2) -> List[str]:
    """Write ``n`` small seeded workload traces under ``directory``.

    Used by the integration suites (parallel vs serial, cached vs fresh,
    resumed vs uninterrupted) that need real trace files on disk.
    """
    from repro.analysis.experiments import default_core
    from repro.runtime.engine import ExecutionEngine
    from repro.runtime.sampler import SamplerConfig
    from repro.runtime.tracer import Tracer, TracerConfig
    from repro.trace.writer import write_trace
    from repro.workload.generator import random_kernel_app

    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for i in range(n):
        rng = np.random.default_rng(seed + i)
        app = random_kernel_app(
            rng,
            iterations=60,
            ranks=2,
            n_phases=3,
            min_phase_fraction=0.1,
            name=f"verify{i}",
        )
        timeline = ExecutionEngine(default_core(), seed=seed + i).run(app)
        trace = Tracer(
            TracerConfig(sampler=SamplerConfig(period_s=0.02), seed=seed + i)
        ).trace(timeline)
        path = os.path.join(directory, f"case{i}.rpt")
        write_trace(trace, path)
        paths.append(path)
    return paths
