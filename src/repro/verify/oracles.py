"""Deliberately-naive scalar oracles for the optimized pipeline stages.

Every function here re-implements one stage from its *specification* —
plain Python loops, ``math``, and textbook algorithms (Gaussian
elimination, Lawson–Hanson NNLS, exhaustive matching) — sharing no code
with the optimized paths in ``repro.folding``, ``repro.fitting``,
``repro.clustering``, or ``repro.phases``.  The differential runner in
:mod:`repro.verify.differential` executes both sides on generated
corpora and reports any disagreement beyond the documented tolerance
(see ``docs/VERIFICATION.md`` for which comparisons are bit-exact and
which carry a justified tolerance).

Oracles are allowed to be slow (quadratic scans, exponential matching on
tiny inputs) — clarity over speed is the whole point.  Where an oracle
cannot handle an input class at all (e.g. a rank-deficient design, which
the optimized path resolves via ``lstsq`` pseudo-inverse semantics) it
raises :class:`~repro.errors.VerificationError`; the corpus avoids those
inputs and the limitation is documented.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import VerificationError

__all__ = [
    "OracleFold",
    "oracle_fold_cluster",
    "oracle_fit_fixed_breakpoints",
    "oracle_predict",
    "oracle_slope_at",
    "oracle_bic",
    "oracle_aic",
    "oracle_match_boundaries",
    "oracle_kdist",
    "oracle_estimate_eps",
    "oracle_dbscan",
]


# ----------------------------------------------------------------------
# folding
# ----------------------------------------------------------------------
@dataclass
class OracleFold:
    """Scalar counterpart of :class:`repro.folding.fold.FoldedCounter`."""

    counter: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    instance_ids: List[int] = field(default_factory=list)
    n_instances: int = 0
    mean_duration: float = 0.0
    mean_total: float = 0.0


def oracle_fold_cluster(
    instances,
    counters: Sequence[str],
    min_points: int = 16,
    required: Optional[Sequence[str]] = None,
) -> Tuple[Dict[str, OracleFold], Dict[str, str]]:
    """Per-burst scalar fold; returns ``(folded, drops)``.

    Mirrors the *semantics* of ``fold_cluster`` one burst and one sample
    at a time: a burst contributes a counter only when both probes carry
    it and the span is not ``<= 0`` (a NaN span passes through and
    yields NaN ``y``); a sample contributes only when it carries the
    counter.  Points are ordered by a stable sort on ``x`` over the
    (burst, sample) iteration order.  A required counter below
    ``min_points`` raises; an optional one lands in ``drops``.
    """
    required_set = set(counters if required is None else required)
    unknown = required_set - set(counters)
    if unknown:
        raise VerificationError(
            f"required counters not in requested set: {sorted(unknown)}"
        )
    bursts = list(instances)
    folded: Dict[str, OracleFold] = {}
    drops: Dict[str, str] = {}
    for counter in counters:
        xs: List[float] = []
        ys: List[float] = []
        ids: List[int] = []
        for burst_id, burst in enumerate(bursts):
            start = burst.start_counters.get(counter)
            end = burst.end_counters.get(counter)
            if start is None or end is None:
                continue
            span = float(end) - float(start)
            if span <= 0:  # NaN compares False: corrupt probes pass through
                continue
            t0 = float(burst.t_start)
            duration = float(burst.t_end) - t0
            for sample in burst.samples:
                value = sample.counters.get(counter)
                if value is None:
                    continue
                xs.append((float(sample.time) - t0) / duration)
                ys.append((float(value) - float(start)) / span)
                ids.append(burst_id)
        if len(xs) < min_points:
            reason = f"only {len(xs)} folded samples (need >= {min_points})"
            if counter in required_set:
                raise VerificationError(f"counter {counter}: {reason}")
            drops[counter] = reason
            continue
        totals = []
        for burst in bursts:
            start = burst.start_counters.get(counter)
            end = burst.end_counters.get(counter)
            if start is None or end is None:
                continue
            total = float(end) - float(start)
            if math.isfinite(total) and total > 0:
                totals.append(total)
        if not totals:
            reason = "zero events in every instance"
            if counter in required_set:
                raise VerificationError(f"counter {counter}: {reason}")
            drops[counter] = reason
            continue
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        durations = [float(b.t_end) - float(b.t_start) for b in bursts]
        folded[counter] = OracleFold(
            counter=counter,
            x=[xs[i] for i in order],
            y=[ys[i] for i in order],
            instance_ids=[ids[i] for i in order],
            n_instances=len(bursts),
            mean_duration=sum(durations) / len(durations),
            mean_total=sum(totals) / len(totals),
        )
    return folded, drops


# ----------------------------------------------------------------------
# linear algebra primitives (textbook, list-of-lists)
# ----------------------------------------------------------------------
def _solve_linear(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting on a dense system."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-300:
            raise VerificationError(
                f"singular system in oracle solve (pivot column {col})"
            )
        a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, n):
            factor = a[row][col] / a[col][col]
            if factor != 0.0:
                for k in range(col, n + 1):
                    a[row][k] -= factor * a[col][k]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = a[row][n]
        for k in range(row + 1, n):
            acc -= a[row][k] * x[k]
        x[row] = acc / a[row][row]
    return x


def _lstsq_normal(design: List[List[float]], target: List[float]) -> List[float]:
    """Unconstrained least squares via the normal equations."""
    n_cols = len(design[0])
    ata = [[0.0] * n_cols for _ in range(n_cols)]
    atb = [0.0] * n_cols
    for row, t in zip(design, target):
        for i in range(n_cols):
            if row[i] == 0.0:
                continue
            atb[i] += row[i] * t
            for j in range(n_cols):
                ata[i][j] += row[i] * row[j]
    return _solve_linear(ata, atb)


def _nnls(design: List[List[float]], target: List[float]) -> List[float]:
    """Lawson–Hanson active-set NNLS: min ||Ax - b|| subject to x >= 0."""
    n_cols = len(design[0])
    passive = [False] * n_cols
    x = [0.0] * n_cols
    tol = 1e-11 * max(
        1.0, max(abs(v) for row in design for v in row) * max(
            1.0, max(abs(t) for t in target)
        )
    )

    def gradient() -> List[float]:
        residual = [
            t - sum(row[j] * x[j] for j in range(n_cols) if x[j] != 0.0)
            for row, t in zip(design, target)
        ]
        return [
            sum(row[i] * r for row, r in zip(design, residual))
            for i in range(n_cols)
        ]

    def passive_solve() -> List[float]:
        cols = [i for i in range(n_cols) if passive[i]]
        sub = [[row[i] for i in cols] for row in design]
        coeffs = _lstsq_normal(sub, target)
        z = [0.0] * n_cols
        for value, i in zip(coeffs, cols):
            z[i] = value
        return z

    for _ in range(3 * n_cols + 30):
        w = gradient()
        candidates = [i for i in range(n_cols) if not passive[i]]
        if not candidates or max(w[i] for i in candidates) <= tol:
            return x
        passive[max(candidates, key=lambda i: w[i])] = True
        while True:
            z = passive_solve()
            if all(z[i] > tol for i in range(n_cols) if passive[i]):
                x = z
                break
            alpha = min(
                x[i] / (x[i] - z[i])
                for i in range(n_cols)
                if passive[i] and z[i] <= tol and x[i] != z[i]
            )
            x = [xi + alpha * (zi - xi) for xi, zi in zip(x, z)]
            for i in range(n_cols):
                if passive[i] and x[i] <= tol:
                    passive[i] = False
                    x[i] = 0.0
    raise VerificationError("oracle NNLS failed to converge")


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------
def _oracle_basis_row(xi: float, knots: List[float]) -> List[float]:
    """Column j = length of segment j intersected with [0, xi]."""
    return [
        min(max(xi, knots[j]), knots[j + 1]) - knots[j]
        for j in range(len(knots) - 1)
    ]


def oracle_fit_fixed_breakpoints(
    x: Sequence[float],
    y: Sequence[float],
    breakpoints: Sequence[float],
    anchor: bool = True,
    anchor_weight: float = 0.25,
    monotone: bool = True,
) -> Tuple[float, List[float], float]:
    """Scalar weighted PWL fit at fixed breakpoints.

    Returns ``(intercept, slopes, data_sse)``.  Same problem statement
    as ``fit_fixed_breakpoints`` — anchor pseudo-points (0,0)/(1,1) each
    weighted ``anchor_weight * n``, slopes-as-coefficients basis, free
    intercept split ``a+ - a-`` under the monotone (non-negative slope)
    constraint — solved by the normal equations / Lawson–Hanson instead
    of ``lstsq`` / ``scipy.optimize.nnls``.  Agreement is to solver
    tolerance, not bit-exact (documented in docs/VERIFICATION.md).
    """
    xs = [float(v) for v in x]
    ys = [float(v) for v in y]
    if len(xs) != len(ys) or len(xs) < 2:
        raise VerificationError("need equal-length x/y with >= 2 points")
    bp = sorted(float(b) for b in breakpoints)
    if bp and (bp[0] <= 0.0 or bp[-1] >= 1.0):
        raise VerificationError(f"breakpoints must be interior to (0,1): {bp}")
    knots = [0.0] + bp + [1.0]

    n = len(xs)
    if anchor:
        w_anchor = anchor_weight * n
        x_fit = xs + [0.0, 1.0]
        y_fit = ys + [0.0, 1.0]
        weights = [1.0] * n + [w_anchor, w_anchor]
    else:
        x_fit, y_fit, weights = xs, ys, [1.0] * n

    sqrt_w = [math.sqrt(w) for w in weights]
    if monotone:
        design = [
            [sw * 1.0, sw * -1.0] + [sw * v for v in _oracle_basis_row(xi, knots)]
            for xi, sw in zip(x_fit, sqrt_w)
        ]
        target = [yi * sw for yi, sw in zip(y_fit, sqrt_w)]
        coeffs = _nnls(design, target)
        intercept = coeffs[0] - coeffs[1]
        slopes = coeffs[2:]
    else:
        design = [
            [sw * 1.0] + [sw * v for v in _oracle_basis_row(xi, knots)]
            for xi, sw in zip(x_fit, sqrt_w)
        ]
        target = [yi * sw for yi, sw in zip(y_fit, sqrt_w)]
        coeffs = _lstsq_normal(design, target)
        intercept = coeffs[0]
        slopes = coeffs[1:]

    # Data-only SSE, anchors excluded — like the optimized path.
    sse = 0.0
    for xi, yi in zip(xs, ys):
        pred = intercept + sum(
            s * v for s, v in zip(slopes, _oracle_basis_row(xi, knots))
        )
        sse += (yi - pred) ** 2
    return intercept, slopes, sse


def oracle_predict(model, x: float) -> float:
    """Scalar evaluation of a fitted model at one point.

    Implements the documented contract directly — right-continuous
    segment selection, linear extension outside [0, 1] — with a scalar
    walk instead of ``searchsorted``/``cumsum``-gather.  Comparison
    against ``model.predict`` is bit-exact: both accumulate the segment
    areas left to right and add the within-segment term last.
    """
    knots = [0.0] + [float(b) for b in model.breakpoints] + [1.0]
    slopes = [float(s) for s in model.slopes]
    xv = float(x)
    segment = 0
    for j in range(len(slopes)):
        if xv >= knots[j]:
            segment = j
    cumulative = 0.0
    for j in range(segment):
        cumulative += slopes[j] * (knots[j + 1] - knots[j])
    value = float(model.intercept) + cumulative
    return value + slopes[segment] * (xv - knots[segment])


def oracle_slope_at(model, x: float) -> float:
    """Scalar segment-slope lookup under the same selection contract."""
    knots = [0.0] + [float(b) for b in model.breakpoints] + [1.0]
    slopes = [float(s) for s in model.slopes]
    xv = float(x)
    segment = 0
    for j in range(len(slopes)):
        if xv >= knots[j]:
            segment = j
    return slopes[segment]


def oracle_bic(sse: float, n: int, n_params: int) -> float:
    """Gaussian-likelihood BIC, written out from the formula."""
    return n * math.log(max(sse, 1e-18) / n) + n_params * math.log(n)


def oracle_aic(sse: float, n: int, n_params: int) -> float:
    """Gaussian-likelihood AIC, written out from the formula."""
    return n * math.log(max(sse, 1e-18) / n) + 2.0 * n_params


# ----------------------------------------------------------------------
# boundary matching
# ----------------------------------------------------------------------
def oracle_match_boundaries(
    detected: Sequence[float],
    truth: Sequence[float],
    tolerance: float,
) -> Tuple[int, float]:
    """Exhaustive optimal one-to-one matching (exponential — tiny inputs).

    Enumerates every assignment of detected to true boundaries within
    ``tolerance`` and returns the best ``(n_matched, total_error)``
    under the lexicographic objective (max matches, then min total
    absolute error).  The ground truth for ``match_boundaries``'s
    dynamic program.
    """
    det = sorted(float(v) for v in detected)
    tru = sorted(float(v) for v in truth)
    if len(det) * len(tru) > 64:
        raise VerificationError(
            f"exhaustive matcher limited to tiny inputs, got {len(det)}x{len(tru)}"
        )
    best = (0, 0.0)

    def recurse(i: int, used: frozenset, matched: int, total: float) -> None:
        nonlocal best
        if i == len(det):
            if (matched, -total) > (best[0], -best[1]):
                best = (matched, total)
            return
        recurse(i + 1, used, matched, total)
        for j, t in enumerate(tru):
            if j in used:
                continue
            gap = abs(det[i] - t)
            if gap <= tolerance:
                recurse(i + 1, used | {j}, matched + 1, total + gap)

    recurse(0, frozenset(), 0, 0.0)
    return best


# ----------------------------------------------------------------------
# clustering
# ----------------------------------------------------------------------
def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((ai - bi) ** 2 for ai, bi in zip(a, b)))


def oracle_kdist(points: Sequence[Sequence[float]], k: int) -> List[float]:
    """k-th nearest-neighbor distance per point, by full sort.

    Self-distance (0.0) is included in the ranking — index ``k`` of the
    sorted row is the k-th neighbor — matching the optimized partition
    semantics.
    """
    rows = [[float(v) for v in p] for p in points]
    out = []
    for p in rows:
        dists = sorted(_distance(p, q) for q in rows)
        out.append(dists[k])
    return out


def _oracle_quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (the numpy default method)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q
    lower = math.floor(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def oracle_estimate_eps(
    points: Sequence[Sequence[float]],
    k: int = 8,
    quantile: float = 0.95,
    margin: float = 3.0,
) -> float:
    """Naive k-dist eps heuristic: quadratic scan + scalar quantile."""
    n = len(points)
    if n < 2:
        raise VerificationError(f"need >= 2 points to estimate eps, got {n}")
    kdist = oracle_kdist(points, min(k, n - 1))
    eps = _oracle_quantile(kdist, quantile) * margin
    return eps if eps > 0 else 1e-9


def oracle_dbscan(
    points: Sequence[Sequence[float]], eps: float, min_pts: int
) -> List[int]:
    """Textbook scalar DBSCAN with the pipeline's tie-breaking rules.

    Seeds scan in ascending index order; expansion is depth-first with
    unvisited core neighbors pushed in ascending index order (so the
    highest-index one is explored next); border points go to whichever
    cluster reaches them first; final ids are renumbered by decreasing
    size with ties kept in original-id order.  These rules make labels
    fully deterministic, so the comparison against :class:`DBSCAN` is
    exact — on corpora where no pairwise distance sits within fp noise
    of ``eps`` (the optimized path measures distances via the norms
    identity, the oracle directly; see docs/VERIFICATION.md).
    """
    rows = [[float(v) for v in p] for p in points]
    n = len(rows)
    neighborhoods = [
        [j for j in range(n) if _distance(rows[i], rows[j]) <= eps]
        for i in range(n)
    ]
    core = [len(nb) >= min_pts for nb in neighborhoods]

    unvisited_mark, noise = -2, -1
    labels = [unvisited_mark] * n
    cluster_id = 0
    for seed in range(n):
        if labels[seed] != unvisited_mark or not core[seed]:
            continue
        labels[seed] = cluster_id
        frontier = [seed]
        while frontier:
            point = frontier.pop()
            fresh = [j for j in neighborhoods[point] if labels[j] == unvisited_mark]
            for j in fresh:
                labels[j] = cluster_id
            frontier.extend(j for j in fresh if core[j])
        cluster_id += 1
    labels = [noise if lab == unvisited_mark else lab for lab in labels]

    sizes = {c: labels.count(c) for c in set(labels) if c != noise}
    ranked = sorted(sizes, key=lambda c: (-sizes[c], c))
    mapping = {old: new for new, old in enumerate(ranked)}
    return [noise if lab == noise else mapping[lab] for lab in labels]
