"""Metamorphic invariant suites.

Instead of a second implementation, these suites transform the *input*
in a way whose effect on the output is known, and check the optimized
path honors it:

- ``meta_fold_invariance`` — shifting and scaling the wall-clock axis
  of every burst must leave the normalized fold (and the fitted curve)
  unchanged up to fp tolerance: ``(a + s*t - (a + s*t0)) / (s*dur)`` is
  not literally ``(t - t0) / dur`` in floating point, so the tolerance
  is small but not zero (documented in docs/VERIFICATION.md).
- ``meta_cluster_permutation`` — Euclidean distances do not depend on
  feature-column order, so permuting the counter columns must reproduce
  the *exact* same labels; permuting the point rows must preserve the
  core-point partition and the noise set (border-point membership is
  legitimately visit-order dependent, so it is excluded — that is the
  documented DBSCAN contract, not a bug).
- ``meta_monotone_subsample`` — a monotone-constrained fit must yield
  non-negative slopes on any subsample of the data, exactly (NNLS
  returns non-negative coefficients by construction).

Suites register themselves with the differential runner on import.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.verify.differential import (
    Divergence,
    SelftestContext,
    _compare_arrays,
    _suite,
)

__all__: List[str] = []


def _shifted_burst(burst, shift: float, scale: float):
    from repro.clustering.bursts import ComputationBurst
    from repro.trace.records import SampleRecord

    return ComputationBurst(
        rank=burst.rank,
        index=burst.index,
        t_start=shift + scale * burst.t_start,
        t_end=shift + scale * burst.t_end,
        start_counters=dict(burst.start_counters),
        end_counters=dict(burst.end_counters),
        samples=[
            SampleRecord(
                rank=s.rank,
                time=shift + scale * s.time,
                counters=dict(s.counters),
                frames=s.frames,
            )
            for s in burst.samples
        ],
    )


@_suite("meta_fold_invariance")
def _suite_meta_fold(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    from repro.fitting.pwlr import PWLRConfig, fit_pwlr
    from repro.folding.fold import fold_cluster
    from repro.folding.instances import ClusterInstances
    from repro.verify.corpus import burst_clusters

    out: List[Divergence] = []
    # Pure power-of-two scaling with no shift is *exactly* representable:
    # fl(s*t - s*t0) = s * fl(t - t0) and the final division cancels the
    # scale, so the fold must be bit-identical and the fit byte-stable.
    # A time shift is not ((t+a) - (t0+a) rounds differently), so those
    # transforms compare to fp tolerance — and the downstream fit only
    # loosely, because breakpoint selection is discrete and an ulp-level
    # input change can legitimately flip a candidate choice.  The search
    # scores candidates from prefix-sum moments (repro.fitting.moments),
    # whose accumulated roundoff widens the flat valley around near-tied
    # candidates, so a flipped choice can move predictions by a few 1e-3
    # on adversarial corpora (observed ~3e-3); the selection itself stays
    # kernel-independent (the pwlr_kernel suite pins that byte-exactly).
    transforms = [
        (0.0, 4.0, True),
        (0.0, 0.25, True),
        (1000.0, 1.0, False),
        (-250.0, 3.5, False),
    ]
    cases = [c for c in burst_clusters(ctx.seed, ctx.full) if not c.expect_error]
    grid = np.linspace(0.0, 1.0, 41)
    n_checked = 0
    for case in cases:
        base = fold_cluster(
            case.instances, case.counters,
            min_points=case.min_points, required=case.required,
        )
        if not base:
            continue
        n_checked += 1
        for shift, scale, exact in transforms:
            moved = ClusterInstances(
                cluster_id=case.instances.cluster_id,
                bursts=[
                    _shifted_burst(b, shift, scale) for b in case.instances
                ],
                n_candidates=case.instances.n_candidates,
                n_pruned_duration=case.instances.n_pruned_duration,
            )
            folded = fold_cluster(
                moved, case.counters,
                min_points=case.min_points, required=case.required,
            )
            name = f"{case.name}@({shift},{scale})"
            d = None
            if sorted(folded) != sorted(base):
                d = Divergence(
                    "meta_fold_invariance", name, ctx.seed,
                    f"folded counter set changed: {sorted(folded)} vs {sorted(base)}",
                )
            if d is None:
                fold_tol = 0.0 if exact else 1e-9
                fit_rtol, fit_atol = (0.0, 0.0) if exact else (1e-2, 5e-3)
                for counter, ref in base.items():
                    fc = folded[counter]
                    d = _compare_arrays(
                        "meta_fold_invariance", name, ctx.seed,
                        f"{counter}.x", fc.x, ref.x,
                        rtol=fold_tol, atol=fold_tol,
                    ) or _compare_arrays(
                        "meta_fold_invariance", name, ctx.seed,
                        f"{counter}.y", fc.y, ref.y,
                        rtol=fold_tol, atol=fold_tol,
                    )
                    if d:
                        break
                    # Fit only the finite points — the pipeline's filter
                    # stage removes NaN-y samples (corrupt probes) before
                    # the fitter ever sees them.
                    finite = np.isfinite(ref.y)
                    if int(finite.sum()) >= 8:
                        cfg = PWLRConfig(max_breakpoints=3, n_candidates=24)
                        base_fit = fit_pwlr(ref.x[finite], ref.y[finite], cfg)
                        moved_fit = fit_pwlr(fc.x[finite], fc.y[finite], cfg)
                        d = _compare_arrays(
                            "meta_fold_invariance", name, ctx.seed,
                            f"{counter}.fit", moved_fit.predict(grid),
                            base_fit.predict(grid),
                            rtol=fit_rtol, atol=fit_atol,
                        )
                        if d:
                            break
            if d:
                out.append(d)
    return n_checked * len(transforms), out


@_suite("meta_cluster_permutation")
def _suite_meta_perm(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    from repro.clustering.dbscan import DBSCAN, NOISE
    from repro.verify.corpus import point_clouds

    out: List[Divergence] = []
    cases = point_clouds(ctx.seed, ctx.full)
    rng = np.random.default_rng(ctx.seed + 3)
    for case in cases:
        clusterer = DBSCAN(case.eps, min_pts=case.min_pts, index="blocked")
        base = clusterer.fit(case.points).labels

        # Column permutation: distances untouched -> labels identical.
        col_perm = rng.permutation(case.points.shape[1])
        permuted = clusterer.fit(case.points[:, col_perm]).labels
        d = _compare_arrays(
            "meta_cluster_permutation", f"{case.name}/columns", ctx.seed,
            "labels", permuted, base,
        )
        if d:
            out.append(d)
            continue

        # Row permutation: core-point partition and noise set invariant.
        row_perm = rng.permutation(case.points.shape[0])
        shuffled = clusterer.fit(case.points[row_perm]).labels
        back = np.empty_like(shuffled)
        back[row_perm] = shuffled  # labels back in original point order

        if not np.array_equal(back == NOISE, base == NOISE):
            out.append(
                Divergence(
                    "meta_cluster_permutation", f"{case.name}/rows", ctx.seed,
                    "noise set changed under row permutation",
                )
            )
            continue
        # Core points: same neighborhood counts regardless of order.
        diff = case.points[:, None, :] - case.points[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        core = np.sum(dist <= case.eps, axis=1) >= case.min_pts
        partition_a = {}
        partition_b = {}
        for i in np.flatnonzero(core):
            partition_a.setdefault(int(base[i]), set()).add(int(i))
            partition_b.setdefault(int(back[i]), set()).add(int(i))
        if sorted(map(frozenset, partition_a.values())) != sorted(
            map(frozenset, partition_b.values())
        ):
            out.append(
                Divergence(
                    "meta_cluster_permutation", f"{case.name}/rows", ctx.seed,
                    "core-point partition changed under row permutation",
                )
            )
    return 2 * len(cases), out


@_suite("meta_monotone_subsample")
def _suite_meta_monotone(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    from repro.fitting.pwlr import fit_fixed_breakpoints
    from repro.verify.corpus import pwl_datasets

    out: List[Divergence] = []
    cases = pwl_datasets(ctx.seed, ctx.full)
    n_checked = 0
    for case in cases:
        for stride, tag in ((1, "all"), (2, "half"), (3, "third")):
            x, y = case.x[::stride], case.y[::stride]
            if x.size < 4:
                continue
            n_checked += 1
            model = fit_fixed_breakpoints(
                x, y, case.breakpoints, anchor=case.anchor, monotone=True
            )
            if np.any(model.slopes < 0):
                out.append(
                    Divergence(
                        "meta_monotone_subsample", f"{case.name}/{tag}", ctx.seed,
                        f"monotone fit produced a negative slope: "
                        f"{model.slopes.min():.3e}",
                        max_abs_delta=float(-model.slopes.min()),
                    )
                )
    return n_checked, out
