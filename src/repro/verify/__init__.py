"""Differential self-verification of the optimized pipeline.

Three layers, run together by ``repro selftest``:

- :mod:`repro.verify.oracles` — deliberately-naive scalar reference
  implementations of the core stages, sharing no code with the
  optimized paths;
- :mod:`repro.verify.corpus` — seeded and adversarial input corpora;
- :mod:`repro.verify.differential` — the runner executing the
  equivalence and metamorphic suites and reporting structured
  divergences (stage, seed, max abs/ulp delta, repro command).

See ``docs/VERIFICATION.md`` for the oracle inventory, the bit-exact vs
tolerance contract of every suite, and how to replay a divergence.
"""

from repro.verify.differential import (
    Divergence,
    SelftestReport,
    SuiteResult,
    available_suites,
    run_selftest,
)
import repro.verify.metamorphic  # noqa: F401  (registers the meta_* suites)

__all__ = [
    "Divergence",
    "SelftestReport",
    "SuiteResult",
    "available_suites",
    "run_selftest",
]
