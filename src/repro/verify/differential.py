"""Differential runner: optimized stages vs their scalar oracles.

Each *suite* pits one optimized path against an independent reference —
a scalar oracle from :mod:`repro.verify.oracles`, a forced alternate
backend, or a second execution mode (parallel/cached/resumed) — over
the seeded corpora in :mod:`repro.verify.corpus`, and reports every
disagreement beyond the suite's documented tolerance as a structured
:class:`Divergence` carrying the stage, seed, max abs/ulp delta, and
the exact command that replays it.

Bit-exact suites (tolerance zero): fold arrays, DBSCAN labels (both
grid-vs-blocked and vs the scalar oracle on fp-safe corpora), predict/
slope_at, BIC/AIC, boundary matching, parallel-vs-serial, cached, and
resumed results.  Tolerance suites (different algorithms for the same
math): least-squares coefficients, eps estimation, and the fold's mean
statistics — each tolerance is justified in ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FoldingError, VerificationError

__all__ = [
    "Divergence",
    "SuiteResult",
    "SelftestReport",
    "SelftestContext",
    "available_suites",
    "run_selftest",
]


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """One optimized-vs-reference disagreement."""

    suite: str
    case: str
    seed: int
    detail: str
    max_abs_delta: float = float("nan")
    max_ulp_delta: float = float("nan")

    @property
    def repro(self) -> str:
        """Command that replays exactly this comparison."""
        return (
            f"PYTHONPATH=src python -m repro selftest "
            f"--suite {self.suite} --seed {self.seed}"
        )

    def render(self) -> str:
        deltas = ""
        if np.isfinite(self.max_abs_delta) or np.isfinite(self.max_ulp_delta):
            deltas = (
                f" [max abs {self.max_abs_delta:.3e}, "
                f"max ulp {self.max_ulp_delta:.1f}]"
            )
        return (
            f"DIVERGENCE {self.suite}/{self.case} (seed {self.seed}): "
            f"{self.detail}{deltas}\n    repro: {self.repro}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "case": self.case,
            "seed": self.seed,
            "detail": self.detail,
            "max_abs_delta": self.max_abs_delta,
            "max_ulp_delta": self.max_ulp_delta,
            "repro": self.repro,
        }


@dataclass
class SuiteResult:
    name: str
    n_cases: int
    duration_s: float
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class SelftestReport:
    mode: str
    seed: int
    suites: List[SuiteResult] = field(default_factory=list)

    @property
    def divergences(self) -> List[Divergence]:
        return [d for s in self.suites for d in s.divergences]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        lines = [f"selftest ({self.mode}, seed {self.seed})"]
        width = max((len(s.name) for s in self.suites), default=8)
        for s in self.suites:
            status = "ok" if s.ok else f"{len(s.divergences)} DIVERGENT"
            lines.append(
                f"  {s.name:<{width}}  {s.n_cases:>4} cases  "
                f"{s.duration_s:>7.2f}s  {status}"
            )
        for d in self.divergences:
            lines.append(d.render())
        verdict = "PASS" if self.ok else f"FAIL ({len(self.divergences)} divergences)"
        lines.append(
            f"{len(self.suites)} suites, "
            f"{sum(s.n_cases for s in self.suites)} cases: {verdict}"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "repro-selftest/1",
            "mode": self.mode,
            "seed": self.seed,
            "ok": self.ok,
            "suites": [
                {
                    "name": s.name,
                    "n_cases": s.n_cases,
                    "duration_s": s.duration_s,
                    "divergences": [d.to_dict() for d in s.divergences],
                }
                for s in self.suites
            ],
        }


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def _ulp_delta(got: np.ndarray, want: np.ndarray) -> float:
    """Largest disagreement in units of the last place (NaN-pairs = 0)."""
    got = np.atleast_1d(np.asarray(got, dtype=float))
    want = np.atleast_1d(np.asarray(want, dtype=float))
    both_nan = np.isnan(got) & np.isnan(want)
    diff = np.abs(got - want)
    scale = np.spacing(np.maximum(np.abs(got), np.abs(want)))
    with np.errstate(invalid="ignore", divide="ignore"):
        ulps = np.where(both_nan, 0.0, diff / scale)
    ulps = ulps[np.isfinite(ulps)]
    return float(ulps.max()) if ulps.size else float("inf")


def _compare_arrays(
    suite: str,
    case: str,
    seed: int,
    label: str,
    got,
    want,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> Optional[Divergence]:
    """None when ``got`` matches ``want``; a Divergence otherwise.

    ``rtol == atol == 0`` demands bit-exact equality (NaN == NaN).
    """
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    if got.shape != want.shape:
        return Divergence(
            suite, case, seed,
            f"{label}: shape {got.shape} != {want.shape}",
        )
    if rtol == 0.0 and atol == 0.0:
        same = np.array_equal(got, want, equal_nan=True)
    else:
        same = np.allclose(got, want, rtol=rtol, atol=atol, equal_nan=True)
    if same:
        return None
    both_nan = np.isnan(got) & np.isnan(want)
    diff = np.abs(np.where(both_nan, 0.0, got - want))
    finite = diff[np.isfinite(diff)]
    max_abs = float(finite.max()) if finite.size else float("inf")
    return Divergence(
        suite, case, seed,
        f"{label}: values differ beyond tolerance "
        f"(rtol={rtol:g}, atol={atol:g})",
        max_abs_delta=max_abs,
        max_ulp_delta=_ulp_delta(got, want),
    )


def _compare_exact(
    suite: str, case: str, seed: int, label: str, got, want
) -> Optional[Divergence]:
    if got != want:
        return Divergence(suite, case, seed, f"{label}: {got!r} != {want!r}")
    return None


# ----------------------------------------------------------------------
# suite registry + shared context
# ----------------------------------------------------------------------
_SUITES: Dict[str, Callable[["SelftestContext"], Tuple[int, List[Divergence]]]] = {}


def _suite(name: str):
    def register(fn):
        _SUITES[name] = fn
        return fn

    return register


def available_suites() -> List[str]:
    return sorted(_SUITES)


class SelftestContext:
    """Per-run state: seed, scale, and lazily-built expensive artifacts.

    The trace files and the serial analysis result are shared across the
    integration suites (parallel/cache/resume/roundtrip) so the harness
    pays for them once.
    """

    def __init__(self, seed: int, full: bool, workdir: str) -> None:
        self.seed = seed
        self.full = full
        self.workdir = workdir
        self._trace_paths: Optional[List[str]] = None
        self._serial_json: Optional[str] = None

    def trace_paths(self) -> List[str]:
        if self._trace_paths is None:
            from repro.verify.corpus import write_case_traces

            self._trace_paths = write_case_traces(
                self.seed, os.path.join(self.workdir, "traces"), n=2
            )
        return self._trace_paths

    def serial_result_json(self) -> str:
        """Canonical JSON of the serial analysis of trace 0."""
        if self._serial_json is None:
            from repro.analysis.pipeline import FoldingAnalyzer
            from repro.store.serialize import result_to_json
            from repro.trace.reader import read_trace

            trace = read_trace(self.trace_paths()[0])
            result = FoldingAnalyzer().analyze(trace)
            self._serial_json = result_to_json(result)
        return self._serial_json


# ----------------------------------------------------------------------
# stage suites
# ----------------------------------------------------------------------
@_suite("fold")
def _suite_fold(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Vectorized fold_cluster vs the per-burst scalar oracle.

    Arrays must match bit-for-bit (same elementwise arithmetic, same
    stable ordering); the mean statistics carry a tiny tolerance because
    numpy's pairwise summation and the oracle's running sum associate
    differently.
    """
    from repro.folding.fold import fold_cluster
    from repro.verify.corpus import burst_clusters
    from repro.verify.oracles import oracle_fold_cluster

    out: List[Divergence] = []
    cases = burst_clusters(ctx.seed, ctx.full)
    for case in cases:
        drops: Dict[str, str] = {}
        try:
            folded = fold_cluster(
                case.instances,
                case.counters,
                min_points=case.min_points,
                required=case.required,
                drops=drops,
            )
            raised = False
        except FoldingError:
            raised = True
        try:
            oracle, oracle_drops = oracle_fold_cluster(
                case.instances,
                case.counters,
                min_points=case.min_points,
                required=case.required,
            )
            oracle_raised = False
        except VerificationError:
            oracle_raised = True
        if case.expect_error or raised or oracle_raised:
            if raised != oracle_raised:
                out.append(
                    Divergence(
                        "fold", case.name, ctx.seed,
                        f"raise mismatch: optimized={raised} oracle={oracle_raised}",
                    )
                )
            continue
        d = _compare_exact(
            "fold", case.name, ctx.seed, "folded counters",
            sorted(folded), sorted(oracle),
        ) or _compare_exact(
            "fold", case.name, ctx.seed, "dropped counters",
            sorted(drops), sorted(oracle_drops),
        )
        if d:
            out.append(d)
            continue
        for counter, fc in folded.items():
            ref = oracle[counter]
            for label, got, want, rtol, atol in (
                ("x", fc.x, ref.x, 0.0, 0.0),
                ("y", fc.y, ref.y, 0.0, 0.0),
                ("instance_ids", fc.instance_ids, ref.instance_ids, 0.0, 0.0),
                ("mean_duration", fc.mean_duration, ref.mean_duration, 1e-12, 0.0),
                ("mean_total", fc.mean_total, ref.mean_total, 1e-12, 0.0),
            ):
                d = _compare_arrays(
                    "fold", case.name, ctx.seed, f"{counter}.{label}",
                    got, want, rtol=rtol, atol=atol,
                )
                if d:
                    out.append(d)
            d = _compare_exact(
                "fold", case.name, ctx.seed, f"{counter}.n_instances",
                fc.n_instances, ref.n_instances,
            )
            if d:
                out.append(d)
    return len(cases), out


@_suite("pwlr_lstsq")
def _suite_pwlr_lstsq(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """fit_fixed_breakpoints (lstsq / scipy nnls) vs normal equations +
    Lawson–Hanson.  Different solvers for the same convex problem:
    coefficients agree to solver tolerance, the optimal SSE tighter."""
    from repro.fitting.pwlr import fit_fixed_breakpoints
    from repro.verify.corpus import pwl_datasets
    from repro.verify.oracles import oracle_fit_fixed_breakpoints

    out: List[Divergence] = []
    cases = pwl_datasets(ctx.seed, ctx.full)
    for case in cases:
        model = fit_fixed_breakpoints(
            case.x, case.y, case.breakpoints,
            anchor=case.anchor, monotone=case.monotone,
        )
        intercept, slopes, sse = oracle_fit_fixed_breakpoints(
            case.x, case.y, case.breakpoints,
            anchor=case.anchor, monotone=case.monotone,
        )
        for label, got, want, rtol, atol in (
            ("intercept", model.intercept, intercept, 1e-5, 1e-7),
            ("slopes", model.slopes, slopes, 1e-5, 1e-6),
            ("sse", model.sse, sse, 1e-6, 1e-9),
        ):
            d = _compare_arrays(
                "pwlr_lstsq", case.name, ctx.seed, label, got, want,
                rtol=rtol, atol=atol,
            )
            if d:
                out.append(d)
    return len(cases), out


@_suite("pwlr_kernel")
def _suite_pwlr_kernel(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Moments search kernel vs the exact dense kernel.

    The moments kernel only *ranks* candidate configurations, continuous
    refinement always runs on the shared moments profile, and the final
    fit is always the exact path — so both kernels must select identical
    breakpoints and produce bit-identical models on every corpus case,
    and a full pipeline run must serialize byte-identical result JSON
    under either kernel (the precondition for excluding
    ``pwlr.search_kernel`` from store fingerprints).
    """
    import dataclasses

    from repro.analysis.pipeline import AnalyzerConfig, FoldingAnalyzer
    from repro.fitting.pwlr import PWLRConfig, fit_pwlr
    from repro.store.serialize import result_to_json
    from repro.trace.reader import read_trace
    from repro.verify.corpus import pwl_datasets

    out: List[Divergence] = []
    cases = pwl_datasets(ctx.seed, ctx.full)
    for case in cases:
        models = {}
        for kernel in ("moments", "exact"):
            cfg = PWLRConfig(
                anchor=case.anchor, monotone=case.monotone, search_kernel=kernel
            )
            models[kernel] = fit_pwlr(case.x, case.y, config=cfg)
        got, want = models["moments"], models["exact"]
        for label, a, b in (
            ("breakpoints", got.breakpoints, want.breakpoints),
            ("slopes", got.slopes, want.slopes),
            ("intercept", got.intercept, want.intercept),
            ("sse", got.sse, want.sse),
        ):
            d = _compare_arrays("pwlr_kernel", case.name, ctx.seed, label, a, b)
            if d:
                out.append(d)
    n_cases = len(cases)

    # End-to-end: full-pipeline result JSON must be byte-identical
    # between kernels (and under "auto", which resolves to one of them).
    for path in ctx.trace_paths():
        n_cases += 1
        trace = read_trace(path)
        rendered = {}
        for kernel in ("moments", "exact", "auto"):
            cfg = AnalyzerConfig(
                pwlr=dataclasses.replace(PWLRConfig(), search_kernel=kernel)
            )
            rendered[kernel] = result_to_json(FoldingAnalyzer(cfg).analyze(trace))
        name = os.path.basename(path)
        for kernel in ("exact", "auto"):
            if rendered["moments"] != rendered[kernel]:
                out.append(
                    Divergence(
                        "pwlr_kernel", name, ctx.seed,
                        f"result JSON differs: moments vs {kernel}",
                    )
                )
    return n_cases, out


@_suite("predict")
def _suite_predict(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Vectorized predict/slope_at vs the scalar segment walk — bit-exact
    (both accumulate segment areas left to right), probed exactly at the
    breakpoint abscissae and outside [0, 1]."""
    from repro.verify.corpus import random_models
    from repro.verify.oracles import oracle_predict, oracle_slope_at

    rng = np.random.default_rng(ctx.seed + 1)
    out: List[Divergence] = []
    models = random_models(ctx.seed, ctx.full)
    for idx, model in enumerate(models):
        probes = np.concatenate([
            model.breakpoints,
            np.nextafter(model.breakpoints, -np.inf),
            np.nextafter(model.breakpoints, np.inf),
            [0.0, 1.0, -0.5, 1.5, np.nextafter(0.0, -1.0), np.nextafter(1.0, 2.0)],
            rng.uniform(-0.2, 1.2, size=40),
        ])
        got_y = model.predict(probes)
        got_s = model.slope_at(probes)
        want_y = [oracle_predict(model, float(p)) for p in probes]
        want_s = [oracle_slope_at(model, float(p)) for p in probes]
        name = f"model{idx}"
        for label, got, want in (("predict", got_y, want_y), ("slope_at", got_s, want_s)):
            d = _compare_arrays("predict", name, ctx.seed, label, got, want)
            if d:
                out.append(d)
        # scalar-call path must agree with the vectorized one
        scalar_y = [model.predict(float(p)) for p in probes]
        d = _compare_arrays("predict", name, ctx.seed, "scalar predict", scalar_y, got_y)
        if d:
            out.append(d)
    return len(models), out


@_suite("bic")
def _suite_bic(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Model-selection criteria vs the formula written out — bit-exact."""
    from repro.fitting.model_selection import aic, bic
    from repro.verify.oracles import oracle_aic, oracle_bic

    rng = np.random.default_rng(ctx.seed + 2)
    out: List[Divergence] = []
    n_cases = 200 if ctx.full else 60
    for i in range(n_cases):
        sse = float(rng.choice([0.0, 1e-30, rng.uniform(1e-9, 1e4)]))
        n = int(rng.integers(1, 10_000))
        p = int(rng.integers(0, 40))
        for label, got, want in (
            ("bic", bic(sse, n, p), oracle_bic(sse, n, p)),
            ("aic", aic(sse, n, p), oracle_aic(sse, n, p)),
        ):
            d = _compare_arrays("bic", f"case{i}", ctx.seed, label, got, want)
            if d:
                out.append(d)
    return n_cases, out


@_suite("match")
def _suite_match(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """match_boundaries' dynamic program vs exhaustive enumeration."""
    from repro.phases.compare import match_boundaries
    from repro.verify.corpus import boundary_sets
    from repro.verify.oracles import oracle_match_boundaries

    out: List[Divergence] = []
    cases = boundary_sets(ctx.seed, ctx.full)
    for case in cases:
        score = match_boundaries(case.detected, case.truth, case.tolerance)
        n_matched, total = oracle_match_boundaries(
            case.detected, case.truth, case.tolerance
        )
        d = _compare_exact(
            "match", case.name, ctx.seed, "n_matched", score.n_matched, n_matched
        )
        if d:
            out.append(d)
            continue
        if n_matched:
            d = _compare_arrays(
                "match", case.name, ctx.seed, "total_error",
                score.mean_abs_error * score.n_matched, total,
                rtol=1e-12, atol=1e-12,
            )
            if d:
                out.append(d)
        elif not np.isnan(score.mean_abs_error):
            out.append(
                Divergence(
                    "match", case.name, ctx.seed,
                    f"mean_abs_error must be NaN with 0 matches, "
                    f"got {score.mean_abs_error!r}",
                )
            )
    return len(cases), out


@_suite("dbscan_backends")
def _suite_dbscan_backends(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Grid vs blocked neighborhood backends — byte-identical labels,
    including the cell-edge geometry where distances equal eps exactly."""
    from repro.clustering.dbscan import DBSCAN
    from repro.verify.corpus import grid_edge_cloud, point_clouds

    out: List[Divergence] = []
    cases = point_clouds(ctx.seed, ctx.full) + [grid_edge_cloud(ctx.seed)]
    for case in cases:
        grid = DBSCAN(case.eps, min_pts=case.min_pts, index="grid").fit(case.points)
        blocked = DBSCAN(case.eps, min_pts=case.min_pts, index="blocked").fit(case.points)
        d = _compare_arrays(
            "dbscan_backends", case.name, ctx.seed, "labels",
            grid.labels, blocked.labels,
        )
        if d:
            out.append(d)
    return len(cases), out


@_suite("dbscan_oracle")
def _suite_dbscan_oracle(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """DBSCAN vs the textbook scalar implementation — exact labels on
    corpora whose eps sits mid-gap in the distance distribution (the two
    sides measure distance with different arithmetic; see VERIFICATION)."""
    from repro.clustering.dbscan import DBSCAN
    from repro.verify.corpus import point_clouds
    from repro.verify.oracles import oracle_dbscan

    out: List[Divergence] = []
    cases = point_clouds(ctx.seed, ctx.full)
    for case in cases:
        got = DBSCAN(case.eps, min_pts=case.min_pts, index="blocked").fit(case.points)
        want = oracle_dbscan(case.points, case.eps, case.min_pts)
        d = _compare_arrays(
            "dbscan_oracle", case.name, ctx.seed, "labels", got.labels, want
        )
        if d:
            out.append(d)
    return len(cases), out


@_suite("eps")
def _suite_eps(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """estimate_eps (norms-identity k-dist + np.quantile) vs the naive
    quadratic scan + scalar quantile — tolerance for the fp differences
    between the two distance formulations."""
    from repro.clustering.dbscan import estimate_eps
    from repro.verify.corpus import point_clouds
    from repro.verify.oracles import oracle_estimate_eps

    out: List[Divergence] = []
    cases = point_clouds(ctx.seed, ctx.full)
    for case in cases:
        got = estimate_eps(case.points, k=4)
        want = oracle_estimate_eps(case.points, k=4)
        d = _compare_arrays(
            "eps", case.name, ctx.seed, "eps", got, want, rtol=1e-6, atol=1e-9
        )
        if d:
            out.append(d)
    return len(cases), out


# ----------------------------------------------------------------------
# integration suites
# ----------------------------------------------------------------------
@_suite("roundtrip")
def _suite_roundtrip(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """to_dict/from_dict idempotence on a real result, on one carrying
    NaN/inf diagnostic context values, and on one with zero slopes."""
    import dataclasses

    from repro.resilience.diagnostics import DiagnosticEvent, Diagnostics, Severity
    from repro.store.serialize import result_from_json, result_to_json

    out: List[Divergence] = []
    base_json = ctx.serial_result_json()

    def check(name: str, text: str) -> None:
        again = result_to_json(result_from_json(text))
        if again != text:
            for i, (a, b) in enumerate(zip(text, again)):
                if a != b:
                    break
            else:
                i = min(len(text), len(again))
            out.append(
                Divergence(
                    "roundtrip", name, ctx.seed,
                    f"re-encoded JSON differs at byte {i}: "
                    f"{text[max(0, i - 30):i + 30]!r} vs "
                    f"{again[max(0, i - 30):i + 30]!r}",
                )
            )

    check("real_result", base_json)

    # NaN/inf diagnostic context values, scalar and inside containers.
    result = result_from_json(base_json)
    hostile = Diagnostics(
        events=list(result.diagnostics)
        + [
            DiagnosticEvent(
                severity=Severity.WARNING,
                stage="verify",
                message="synthetic non-finite context",
                context={
                    "rate": float("nan"),
                    "limit": float("inf"),
                    "window": (float("nan"), 1.0),
                    "nested": {1: (float("-inf"), 0.0)},
                },
            )
        ]
    )
    hostile_result = dataclasses.replace(result, diagnostics=hostile)
    check("nonfinite_diagnostics", result_to_json(hostile_result))

    # Zero-slope segments through the artifact schema.
    data = json.loads(base_json)
    zeroed = 0
    for cluster in data.get("clusters", []):
        model = cluster.get("model")
        if model and model.get("slopes"):
            model["slopes"] = [0.0] * len(model["slopes"])
            zeroed += 1
    if zeroed:
        from repro.store.serialize import result_from_dict

        check("zero_slopes", result_to_json(result_from_dict(data)))
    return 3, out


@_suite("parallel")
def _suite_parallel(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Parallel per-cluster analysis (n_jobs=2) vs serial — the stored
    JSON must be byte-identical."""
    from repro.analysis.pipeline import AnalyzerConfig, FoldingAnalyzer
    from repro.store.serialize import result_to_json
    from repro.trace.reader import read_trace

    trace = read_trace(ctx.trace_paths()[0])
    parallel = FoldingAnalyzer(AnalyzerConfig(n_jobs=2)).analyze(trace)
    got = result_to_json(parallel)
    want = ctx.serial_result_json()
    out: List[Divergence] = []
    if got != want:
        out.append(
            Divergence(
                "parallel", "trace0", ctx.seed,
                "n_jobs=2 result JSON differs from serial",
            )
        )
    return 1, out


@_suite("cache")
def _suite_cache(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Cached store hit vs fresh analysis — same fingerprint, hit flag
    set, byte-identical result JSON."""
    from repro.store import ResultStore
    from repro.store.cache import analyze_cached
    from repro.store.serialize import result_to_json

    store = ResultStore(os.path.join(ctx.workdir, "cache-store"))
    path = ctx.trace_paths()[0]
    cold = analyze_cached(path, store)
    warm = analyze_cached(path, store)
    out: List[Divergence] = []
    if cold.cache_hit:
        out.append(Divergence("cache", "cold", ctx.seed, "first call reported a hit"))
    if not warm.cache_hit:
        out.append(Divergence("cache", "warm", ctx.seed, "second call missed the cache"))
    if cold.fingerprint != warm.fingerprint:
        out.append(
            Divergence(
                "cache", "fingerprint", ctx.seed,
                f"fingerprint changed: {cold.fingerprint[:12]} != {warm.fingerprint[:12]}",
            )
        )
    if result_to_json(warm.result) != result_to_json(cold.result):
        out.append(
            Divergence(
                "cache", "payload", ctx.seed,
                "cached result JSON differs from the fresh analysis",
            )
        )
    return 1, out


@_suite("resume")
def _suite_resume(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """A batch interrupted after its first job and resumed must leave the
    store with exactly the artifacts of an uninterrupted run."""
    from repro.service import BatchConfig, JobSpec, run_batch
    from repro.store import ResultStore
    from repro.store.serialize import result_to_json

    paths = ctx.trace_paths()
    specs = [JobSpec(p) for p in paths]
    config = BatchConfig(ledger=False)

    oneshot_root = os.path.join(ctx.workdir, "resume-oneshot")
    resumed_root = os.path.join(ctx.workdir, "resume-interrupted")
    for root in (oneshot_root, resumed_root):
        shutil.rmtree(root, ignore_errors=True)

    oneshot = ResultStore(oneshot_root)
    run_batch(specs, oneshot, config)

    resumed = ResultStore(resumed_root)
    run_batch(specs[:1], resumed, config)  # "interrupted" after job 1
    run_batch(specs, resumed, BatchConfig(ledger=False, resume=True))

    out: List[Divergence] = []
    a, b = sorted(oneshot.fingerprints()), sorted(resumed.fingerprints())
    if a != b:
        out.append(
            Divergence(
                "resume", "fingerprints", ctx.seed,
                f"store contents differ: {len(a)} vs {len(b)} artifacts",
            )
        )
        return 1, out
    for fingerprint in a:
        got = result_to_json(resumed.get(fingerprint))
        want = result_to_json(oneshot.get(fingerprint))
        if got != want:
            out.append(
                Divergence(
                    "resume", fingerprint[:12], ctx.seed,
                    "resumed artifact differs from the uninterrupted run",
                )
            )
    return 1, out


@_suite("stream")
def _suite_stream(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """Streamed chunk-at-a-time analysis vs cold batch analyze — the
    finalized result JSON must be byte-identical, on clean traces
    (strict) and on adversarially corrupted ones (salvage vs salvage).
    The live parser's drop counts must also match the batch salvage."""
    from repro.analysis.pipeline import FoldingAnalyzer
    from repro.resilience.inject import CorruptionSpec, corrupt_trace_text
    from repro.store.serialize import result_to_json
    from repro.stream.engine import StreamConfig, StreamEngine
    from repro.stream.source import TraceTailSource
    from repro.trace.reader import read_trace, read_trace_salvaged

    out: List[Divergence] = []
    n_cases = 0

    def run_stream(path: str, salvage: bool, chunk: int) -> Tuple[str, int]:
        engine = StreamEngine(StreamConfig(salvage=salvage))
        source = TraceTailSource(path, chunk_size=chunk)
        for text in source.drain():
            engine.process_text(text)
        result = engine.finalize(source)
        return result_to_json(result), engine.parser.report.n_lines_dropped

    # clean traces, strict finalization, torn-tail-inducing chunk sizes
    # (quick mode keeps one odd chunk size per trace; full adds a big one)
    chunks = (997, 1 << 16) if ctx.full else (997,)
    for i, path in enumerate(ctx.trace_paths()):
        for chunk in chunks:
            n_cases += 1
            got, _ = run_stream(path, salvage=False, chunk=chunk)
            want = result_to_json(FoldingAnalyzer().analyze(read_trace(path)))
            if got != want:
                out.append(
                    Divergence(
                        "stream", f"clean{i}-chunk{chunk}", ctx.seed,
                        "finalized stream result differs from batch analyze",
                    )
                )

    # adversarial corpus, salvage on both sides
    base = open(ctx.trace_paths()[0], encoding="utf-8").read()
    corruptions = [
        ("torn", [CorruptionSpec("truncate", 0.03)]),
        ("mixed", [
            CorruptionSpec("bitflip_fields", 0.03),
            CorruptionSpec("duplicate_records", 0.05),
            CorruptionSpec("nan_counters", 0.02),
            CorruptionSpec("truncate", 0.01),
        ]),
    ]
    if ctx.full:
        corruptions += [
            ("bitflip", [CorruptionSpec("bitflip_fields", 0.05)]),
            ("dup", [CorruptionSpec("duplicate_records", 0.10)]),
        ]
    for name, specs in corruptions:
        n_cases += 1
        bad = corrupt_trace_text(base, specs, seed=ctx.seed)
        path = os.path.join(ctx.workdir, f"stream-{name}.rpt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(bad)
        got, got_drops = run_stream(path, salvage=True, chunk=1013)
        trace, report = read_trace_salvaged(path)
        want = result_to_json(FoldingAnalyzer().analyze(trace, salvage=report))
        if got != want:
            out.append(
                Divergence(
                    "stream", name, ctx.seed,
                    "salvage stream result differs from batch salvage analyze",
                )
            )
        if got_drops != report.n_lines_dropped:
            out.append(
                Divergence(
                    "stream", f"{name}-drops", ctx.seed,
                    f"live parser dropped {got_drops} lines, "
                    f"batch salvage dropped {report.n_lines_dropped}",
                )
            )
    return n_cases, out


@_suite("stream_resume")
def _suite_stream_resume(ctx: SelftestContext) -> Tuple[int, List[Divergence]]:
    """A stream checkpointed mid-file and resumed in a fresh engine must
    finalize to the byte-identical result AND identical live counters of
    an uninterrupted stream."""
    from repro.store.serialize import result_to_json
    from repro.stream.checkpoint import resume_engine, save_checkpoint
    from repro.stream.engine import StreamConfig, StreamEngine
    from repro.stream.source import TraceTailSource

    path = ctx.trace_paths()[0]
    chunk = 2048

    straight = StreamEngine(StreamConfig())
    source = TraceTailSource(path, chunk_size=chunk)
    for text in source.drain():
        straight.process_text(text)
    want = result_to_json(straight.finalize(source))
    want_report = straight.report().to_dict()

    interrupted = StreamEngine(StreamConfig())
    source = TraceTailSource(path, chunk_size=chunk)
    for _ in range(5):
        interrupted.process_text(source.read_available())
    ckpt = os.path.join(ctx.workdir, "stream-resume.ckpt")
    save_checkpoint(ckpt, interrupted, source)
    del interrupted, source

    resumed, source = resume_engine(ckpt, path)
    for text in source.drain():
        resumed.process_text(text)
    got = result_to_json(resumed.finalize(source))
    got_report = resumed.report().to_dict()

    out: List[Divergence] = []
    if got != want:
        out.append(
            Divergence(
                "stream_resume", "result", ctx.seed,
                "resumed stream result differs from the uninterrupted run",
            )
        )
    if got_report != want_report:
        diffs = {
            key for key in want_report
            if got_report.get(key) != want_report[key]
        }
        out.append(
            Divergence(
                "stream_resume", "counters", ctx.seed,
                f"live counters diverged after resume: {sorted(diffs)}",
            )
        )
    return 1, out


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def run_selftest(
    full: bool = False,
    seed: int = 0,
    suites: Optional[Sequence[str]] = None,
    workdir: Optional[str] = None,
) -> SelftestReport:
    """Execute the requested suites (default: all, including the
    metamorphic ones) and return the structured report.

    A suite that *crashes* is itself reported as a divergence — the
    harness failing is never a pass.
    """
    import repro.verify.metamorphic  # noqa: F401  (registers meta_* suites)

    selected = list(suites) if suites else available_suites()
    unknown = sorted(set(selected) - set(_SUITES))
    if unknown:
        raise VerificationError(
            f"unknown suites: {unknown} (available: {available_suites()})"
        )
    report = SelftestReport(mode="full" if full else "quick", seed=seed)
    own_workdir = workdir is None
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-selftest-")
    try:
        ctx = SelftestContext(seed=seed, full=full, workdir=workdir)
        for name in selected:
            start = time.perf_counter()
            try:
                n_cases, divergences = _SUITES[name](ctx)
            except Exception:
                n_cases = 0
                tail = traceback.format_exc().strip().splitlines()[-1]
                divergences = [
                    Divergence(name, "<suite>", seed, f"suite crashed: {tail}")
                ]
            report.suites.append(
                SuiteResult(
                    name=name,
                    n_cases=n_cases,
                    duration_s=time.perf_counter() - start,
                    divergences=list(divergences),
                )
            )
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return report
