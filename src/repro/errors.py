"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subsystem raises the most specific subclass that
applies; error messages always include enough context (counter names, burst
ids, parameter values) to diagnose a failure without re-running with a
debugger attached.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MachineModelError",
    "WorkloadError",
    "TraceFormatError",
    "SalvageError",
    "DiagnosticsError",
    "ClusteringError",
    "FoldingError",
    "FittingError",
    "PhaseError",
    "AnalysisError",
    "RetryExhaustedError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "StoreIntegrityError",
    "AmbiguousPrefixError",
    "StoreLockError",
    "VerificationError",
    "StreamError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent or out of range."""


class MachineModelError(ReproError):
    """The synthetic machine model was asked for something unphysical."""


class WorkloadError(ReproError):
    """A workload/application definition is malformed."""


class TraceFormatError(ReproError):
    """A trace file or record stream violates the trace format contract."""


class SalvageError(TraceFormatError):
    """Salvage-mode reading could not recover anything usable — the input
    is not recognizably a trace, or every record in it is damaged."""


class DiagnosticsError(ReproError):
    """A diagnostics threshold was exceeded (see
    :meth:`repro.resilience.Diagnostics.raise_if`) or a diagnostics query
    was malformed."""


class ClusteringError(ReproError):
    """Burst clustering failed (e.g. empty input, bad parameters)."""


class FoldingError(ReproError):
    """The folding stage cannot produce a folded sample set."""


class FittingError(ReproError):
    """Piece-wise linear regression (or the baseline smoother) failed."""


class PhaseError(ReproError):
    """Phase construction or phase/source mapping failed."""


class AnalysisError(ReproError):
    """The end-to-end analysis pipeline failed."""


class RetryExhaustedError(ReproError):
    """Every attempt a :class:`repro.resilience.retry.RetryPolicy` allowed
    failed; ``__cause__`` holds the final attempt's original exception."""


class CircuitOpenError(RetryExhaustedError):
    """A circuit breaker opened for this key and shed the remaining
    attempts; ``__cause__`` holds the failure that tripped it."""


class DeadlineExceededError(ReproError):
    """A job overran its deadline and its worker process was killed by
    the watchdog."""


class StoreIntegrityError(AnalysisError):
    """A stored artifact is corrupt (unparseable, wrong format, or its
    content digest does not match) — quarantined, not trusted."""


class AmbiguousPrefixError(AnalysisError):
    """A fingerprint prefix matches more than one stored artifact.

    ``candidates`` lists every colliding full digest (sorted) so callers
    can disambiguate without re-listing the store.
    """

    def __init__(self, prefix: str, candidates: Sequence[str]) -> None:
        self.prefix = prefix
        self.candidates = sorted(candidates)
        listing = ", ".join(c[:12] for c in self.candidates)
        super().__init__(
            f"fingerprint prefix {prefix!r} is ambiguous: "
            f"{len(self.candidates)} matches ({listing})"
        )


class StoreLockError(ReproError):
    """The store's advisory batch lock is held by another process."""


class VerificationError(ReproError):
    """The differential self-verification harness itself failed — an
    oracle hit an input it cannot handle (e.g. a singular design it has
    no rank-deficiency path for), or a suite was asked for by a name it
    does not have.  Distinct from a *divergence*, which is a finding the
    harness reports, not an error it raises."""


class StreamError(ReproError):
    """The live streaming engine cannot continue — the followed source
    disappeared, a checkpoint is corrupt or was taken against different
    bytes/configuration, or finalization was requested before the
    underlying trace was complete."""
