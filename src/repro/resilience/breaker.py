"""Per-key circuit breaker: stop re-trying a failure that never changes.

Retry policies assume failures are transient.  When the same job fails
the same way over and over — the trace file is gone, the bytes are not a
trace — every extra attempt is pure waste (and with backoff, *slow*
waste).  :class:`CircuitBreaker` tracks consecutive *identical* failures
per key (the batch scheduler keys by manifest entry) and opens after
``threshold`` of them; an open key sheds all remaining attempts via
:class:`~repro.errors.CircuitOpenError` in
:func:`~repro.resilience.retry.call_with_retry`.

"Identical" means same exception type and message — a job that fails
with *different* errors (a flaky filesystem) keeps its retry budget,
because varied failures are precisely the transient kind retries exist
for.  A success resets the key.

State is observable: ``service.breaker.opened`` counts open transitions
and the ``service.breaker.open`` gauge tracks how many keys are
currently open.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.observability.context import counter as _metric_counter
from repro.observability.context import gauge as _metric_gauge

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Thread-safe consecutive-identical-failure breaker.

    ``threshold`` is the number of consecutive identical failures that
    opens a key; ``threshold=0`` disables the breaker entirely (every
    key always allowed, nothing ever opens).
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 0:
            raise ConfigurationError(
                f"circuit breaker: threshold must be >= 0, got {threshold}"
            )
        self.threshold = threshold
        self._lock = threading.Lock()
        # key -> ((exc type name, message), consecutive count)
        self._streaks: Dict[str, Tuple[Tuple[str, str], int]] = {}
        self._open: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _signature(exc: BaseException) -> Tuple[str, str]:
        return (type(exc).__name__, str(exc))

    def allow(self, key: str) -> bool:
        """Whether attempts for ``key`` may proceed (closed breaker)."""
        if self.threshold == 0:
            return True
        with self._lock:
            return not self._open.get(key, False)

    def record_failure(self, key: str, exc: BaseException) -> bool:
        """Record one failure; returns True when ``key`` is (now) open."""
        if self.threshold == 0:
            return False
        signature = self._signature(exc)
        with self._lock:
            if self._open.get(key, False):
                return True
            previous, count = self._streaks.get(key, (signature, 0))
            count = count + 1 if previous == signature else 1
            self._streaks[key] = (signature, count)
            if count < self.threshold:
                return False
            self._open[key] = True
            n_open = sum(1 for v in self._open.values() if v)
        _metric_counter("service.breaker.opened").inc()
        _metric_gauge("service.breaker.open").set(n_open)
        return True

    def record_success(self, key: str) -> None:
        """Reset ``key``'s streak (and close it if it was open)."""
        with self._lock:
            self._streaks.pop(key, None)
            was_open = self._open.pop(key, False)
            n_open = sum(1 for v in self._open.values() if v)
        if was_open:
            _metric_gauge("service.breaker.open").set(n_open)

    # ------------------------------------------------------------------
    @property
    def open_keys(self) -> List[str]:
        """Currently open keys, sorted."""
        with self._lock:
            return sorted(k for k, v in self._open.items() if v)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"open={len(self.open_keys)})"
        )
