"""Service-level fault injection: hung workers, damaged artifacts, signals.

:mod:`repro.resilience.inject` damages *trace text* — the input side of
the pipeline.  This module damages the *service* around it, the way
production batch deployments actually break:

* :func:`hang_worker` — a job's worker process stops making progress
  (an NFS stall, a livelocked native library).  The scheduler's
  watchdog must detect, kill, and account for it.
* :func:`sigint_after_n_jobs` — the operator hits Ctrl-C (or the
  supervisor sends SIGTERM) mid-batch.  Injected as a deterministic
  in-process trigger so chaos tests don't race real signal delivery.
* :func:`truncate_artifact` — a stored result loses its tail (full
  disk, crashed copy).  The store must quarantine, not crash.
* :func:`flip_artifact_byte` — silent bit rot inside an artifact that
  may still parse as JSON; only the content digest can catch it.

The first two compose into a :class:`FaultPlan` consumed by
``run_batch``; the last two are direct, deterministic file operations on
an artifact path (use :meth:`ResultStore.object_path
<repro.store.artifacts.ResultStore.object_path>` to locate one).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = [
    "FaultPlan",
    "SERVICE_FAULT_OPS",
    "hang_worker",
    "sigint_after_n_jobs",
    "truncate_artifact",
    "flip_artifact_byte",
]


@dataclass(frozen=True)
class FaultPlan:
    """Scheduler-consumed faults for one batch run.

    ``hang`` maps job labels (trace basenames) to the number of seconds
    the job's worker process stalls before doing any work — effectively
    forever relative to a test deadline.  ``sigint_after`` simulates a
    SIGINT arriving after that many jobs have reached a terminal state.
    """

    hang: Mapping[str, float] = field(default_factory=dict)
    sigint_after: Optional[int] = None

    def __post_init__(self) -> None:
        for label, seconds in self.hang.items():
            if seconds <= 0:
                raise ConfigurationError(
                    f"fault plan: hang seconds for {label!r} must be > 0"
                )
        if self.sigint_after is not None and self.sigint_after < 0:
            raise ConfigurationError(
                f"fault plan: sigint_after must be >= 0, got {self.sigint_after}"
            )

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Combine two plans (``other`` wins on conflicting keys)."""
        hang: Dict[str, float] = dict(self.hang)
        hang.update(other.hang)
        sigint = other.sigint_after if other.sigint_after is not None else (
            self.sigint_after
        )
        return FaultPlan(hang=hang, sigint_after=sigint)

    def hang_s(self, label: str) -> Optional[float]:
        """Seconds the job ``label`` should stall, or ``None``."""
        return self.hang.get(label)


def hang_worker(label: str, seconds: float = 3600.0) -> FaultPlan:
    """Plan: the worker for job ``label`` stalls for ``seconds``."""
    return FaultPlan(hang={label: seconds})


def sigint_after_n_jobs(n: int) -> FaultPlan:
    """Plan: deliver a (simulated) SIGINT once ``n`` jobs are terminal."""
    return FaultPlan(sigint_after=n)


# ----------------------------------------------------------------------
# artifact damage — deterministic file operations
# ----------------------------------------------------------------------
def truncate_artifact(path: str, keep_fraction: float = 0.5) -> int:
    """Cut the tail off the artifact at ``path``; returns bytes kept.

    Mirrors a crashed copy / full disk: the JSON envelope is left
    syntactically broken, which the store's read path must quarantine.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigurationError(
            f"truncate_artifact: keep_fraction must be in [0, 1), "
            f"got {keep_fraction}"
        )
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def flip_artifact_byte(path: str, offset: Optional[int] = None) -> int:
    """Deterministically corrupt one byte of the artifact at ``path``.

    With no ``offset``, the first digit after the ``"result"`` key is
    incremented (mod 10) — the artifact usually still *parses*, so only
    the envelope's content digest exposes the damage (classic silent bit
    rot).  Returns the offset actually flipped.
    """
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        raise ConfigurationError(f"flip_artifact_byte: {path} is empty")
    if offset is None:
        anchor = data.find(b'"result"')
        start = anchor + len(b'"result"') if anchor >= 0 else 0
        offset = next(
            (i for i in range(start, len(data)) if 0x30 <= data[i] <= 0x39),
            len(data) // 2,
        )
    if not 0 <= offset < len(data):
        raise ConfigurationError(
            f"flip_artifact_byte: offset {offset} outside file of {len(data)} bytes"
        )
    byte = data[offset]
    if 0x30 <= byte <= 0x39:  # digit -> next digit, keeps JSON parseable
        data[offset] = 0x30 + ((byte - 0x30 + 1) % 10)
    else:
        data[offset] = byte ^ 0x01
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    return offset


#: Service-level fault operators by name (docs / chaos-test discovery),
#: sibling of :data:`repro.resilience.inject.CORRUPTION_OPS`.
SERVICE_FAULT_OPS = {
    "hang_worker": hang_worker,
    "sigint_after_n_jobs": sigint_after_n_jobs,
    "truncate_artifact": truncate_artifact,
    "flip_artifact_byte": flip_artifact_byte,
}
