"""Deterministic fault injection on serialized traces.

Operators damage the *text* form of a trace (see
:mod:`repro.trace.writer`) the way production trace files actually get
damaged — a crashed tracer truncates the file, a lossy transport drops or
duplicates lines, a broken PMU read writes NaN, disk corruption flips
characters, an unsynchronized sampler clock skews timestamps.  Working on
text rather than :class:`~repro.trace.records.Trace` objects matters: the
whole point is to exercise the reader's salvage path on bytes it has never
seen.

Every operator draws from a generator derived via
:func:`repro.util.rng.derive_rng`, so a ``(text, specs, seed)`` triple
always produces the identical corrupted output — chaos tests and the
TAB-8 bench are reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng

__all__ = ["CorruptionSpec", "CORRUPTION_OPS", "corrupt_trace_text"]


@dataclass(frozen=True)
class CorruptionSpec:
    """One corruption operator application.

    ``rate`` is the fraction of eligible record lines affected (for
    ``truncate``: the fraction of the record section cut off the end).
    ``params`` carries operator-specific knobs — currently only
    ``clock_skew``'s ``sigma_s`` (timestamp noise scale in seconds,
    default 0.005).
    """

    op: str
    rate: float = 0.1
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in CORRUPTION_OPS:
            raise ConfigurationError(
                f"unknown corruption op {self.op!r}; "
                f"available: {sorted(CORRUPTION_OPS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1]: {self.rate}")


def _split_sections(text: str) -> Tuple[List[str], List[str]]:
    """Split serialized trace text into (head lines, record lines).

    Corruption only ever touches the record section; damaging the header
    or dictionary is modeled separately (``truncate`` can still eat into
    them when rate is close to 1).
    """
    lines = text.splitlines()
    try:
        split = lines.index("[records]") + 1
    except ValueError:
        return lines, []
    return lines[:split], lines[split:]


def _join(head: List[str], records: List[str]) -> str:
    return "\n".join(head + records) + "\n"


# ----------------------------------------------------------------------
# operators — each maps (head, records, rng, spec) -> (head, records)
# ----------------------------------------------------------------------
def _op_truncate(
    head: List[str], records: List[str], rng: np.random.Generator, spec: CorruptionSpec
) -> Tuple[List[str], List[str]]:
    """Cut ``rate`` of the record section off the end, mid-line: the
    classic crashed-writer artifact (last line left half-written)."""
    if not records:
        return head, records
    body = "\n".join(records)
    keep = int(len(body) * (1.0 - spec.rate))
    cut = body[:keep]
    return head, cut.splitlines()


def _op_drop_samples(
    head: List[str], records: List[str], rng: np.random.Generator, spec: CorruptionSpec
) -> Tuple[List[str], List[str]]:
    """Remove each sample (``P``) record with probability ``rate`` —
    sampler back-pressure / lost UDP datagrams."""
    kept = [
        line
        for line in records
        if not (line.startswith("P ") and rng.random() < spec.rate)
    ]
    return head, kept


def _op_duplicate_records(
    head: List[str], records: List[str], rng: np.random.Generator, spec: CorruptionSpec
) -> Tuple[List[str], List[str]]:
    """Write each record line twice with probability ``rate`` — retried
    writes after a transport hiccup."""
    out: List[str] = []
    for line in records:
        out.append(line)
        if rng.random() < spec.rate:
            out.append(line)
    return head, out


def _mutate_counters(token: str, rng: np.random.Generator) -> str:
    """Replace one counter value in a ``cid=val,...`` token with nan."""
    if token == "-":
        return token
    items = token.split(",")
    victim = int(rng.integers(0, len(items)))
    cid, _, _value = items[victim].partition("=")
    items[victim] = f"{cid}=nan"
    return ",".join(items)


def _op_nan_counters(
    head: List[str], records: List[str], rng: np.random.Generator, spec: CorruptionSpec
) -> Tuple[List[str], List[str]]:
    """Replace one counter value with ``nan`` in each sample/probe record
    with probability ``rate`` — a failed PMU read."""
    out: List[str] = []
    for line in records:
        if line[:2] in ("P ", "I ") and rng.random() < spec.rate:
            fields = line.split(" ")
            # counters are field 3 for P records, field 4 for I records
            idx = 3 if line.startswith("P ") else 4
            if len(fields) > idx:
                fields[idx] = _mutate_counters(fields[idx], rng)
                line = " ".join(fields)
        out.append(line)
    return head, out


_FLIP_ALPHABET = "0123456789.xq#!"


def _op_bitflip_fields(
    head: List[str], records: List[str], rng: np.random.Generator, spec: CorruptionSpec
) -> Tuple[List[str], List[str]]:
    """Overwrite one character of each record with probability ``rate`` —
    bit rot / partial overwrites.  Some flips still parse (a digit became
    another digit: a silently wrong value the downstream physical filters
    must catch); others break the line outright."""
    out: List[str] = []
    for line in records:
        if len(line) > 2 and rng.random() < spec.rate:
            pos = int(rng.integers(2, len(line)))  # never the tag field
            flip = _FLIP_ALPHABET[int(rng.integers(0, len(_FLIP_ALPHABET)))]
            line = line[:pos] + flip + line[pos + 1 :]
        out.append(line)
    return head, out


def _op_clock_skew(
    head: List[str], records: List[str], rng: np.random.Generator, spec: CorruptionSpec
) -> Tuple[List[str], List[str]]:
    """Add Gaussian noise (``sigma_s`` seconds, default 0.005) to sample
    timestamps with probability ``rate`` — an unsynchronized sampler
    clock.  Negative results are kept: the salvage reader must reject
    samples from before the epoch."""
    sigma = float(spec.params.get("sigma_s", 0.005))
    out: List[str] = []
    for line in records:
        if line.startswith("P ") and rng.random() < spec.rate:
            fields = line.split(" ")
            if len(fields) > 2:
                try:
                    t = float(fields[2])
                except ValueError:
                    pass
                else:
                    fields[2] = repr(t + sigma * float(rng.standard_normal()))
                    line = " ".join(fields)
        out.append(line)
    return head, out


CORRUPTION_OPS: Dict[str, Callable] = {
    "truncate": _op_truncate,
    "drop_samples": _op_drop_samples,
    "duplicate_records": _op_duplicate_records,
    "nan_counters": _op_nan_counters,
    "bitflip_fields": _op_bitflip_fields,
    "clock_skew": _op_clock_skew,
}


def corrupt_trace_text(
    text: str,
    specs: Sequence[CorruptionSpec],
    seed: int = 0,
) -> str:
    """Apply ``specs`` in order to serialized trace ``text``.

    Each operator gets an independent generator derived from
    ``(seed, op, position)``, so adding or reordering operators never
    silently reshuffles another operator's draws.
    """
    head, records = _split_sections(text)
    for position, spec in enumerate(specs):
        rng = derive_rng(seed, spec.op, position)
        head, records = CORRUPTION_OPS[spec.op](head, records, rng, spec)
    return _join(head, records)
