"""Resilience layer: structured diagnostics + deterministic fault injection.

Production traces arrive damaged — truncated files, dropped samples,
multiplexed-counter gaps, clock skew between the sampler and the probes.
This package holds the two halves of the library's answer:

* :mod:`repro.resilience.diagnostics` — the :class:`Diagnostics` object
  every degraded pipeline stage appends to, so a salvaged read or a
  fallback fit is *observable* instead of silent;
* :mod:`repro.resilience.inject` — seedable corruption operators
  (truncate, drop-samples, duplicate-records, NaN-counters, field
  bit-flips, clock skew) that damage a serialized trace the way real
  deployments do, powering the chaos tests and the TAB-8 bench;
* :mod:`repro.resilience.retry` — bounded deterministic-backoff retry
  (:func:`call_with_retry`) that the batch scheduler in
  :mod:`repro.service` wraps around each analysis job.

The consuming policies live where the data flows: the salvage read policy
in :mod:`repro.trace.reader` and the degraded-mode fallback chains in
:mod:`repro.analysis.pipeline`.
"""

from repro.resilience.diagnostics import DiagnosticEvent, Diagnostics, Severity
from repro.resilience.inject import (
    CORRUPTION_OPS,
    CorruptionSpec,
    corrupt_trace_text,
)
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "Severity",
    "DiagnosticEvent",
    "Diagnostics",
    "CorruptionSpec",
    "CORRUPTION_OPS",
    "corrupt_trace_text",
    "RetryPolicy",
    "call_with_retry",
]
