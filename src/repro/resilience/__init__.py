"""Resilience layer: structured diagnostics + deterministic fault injection.

Production traces arrive damaged — truncated files, dropped samples,
multiplexed-counter gaps, clock skew between the sampler and the probes —
and production *services* break around them: workers hang, operators hit
Ctrl-C, stored artifacts rot on disk.  This package holds the library's
answer:

* :mod:`repro.resilience.diagnostics` — the :class:`Diagnostics` object
  every degraded pipeline stage appends to, so a salvaged read or a
  fallback fit is *observable* instead of silent;
* :mod:`repro.resilience.inject` — seedable trace-text corruption
  operators (truncate, drop-samples, duplicate-records, NaN-counters,
  field bit-flips, clock skew), powering the chaos tests and TAB-8;
* :mod:`repro.resilience.faults` — service-level fault operators
  (hang_worker, sigint_after_n_jobs, truncate_artifact,
  flip_artifact_byte) that drive the crash-safety chaos tests;
* :mod:`repro.resilience.retry` — bounded deterministic-backoff retry
  (:func:`call_with_retry`), raising
  :class:`~repro.errors.RetryExhaustedError` with the original failure
  as ``__cause__``;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, which
  sheds the remaining retries of a failure that keeps repeating
  identically.

The consuming policies live where the data flows: the salvage read policy
in :mod:`repro.trace.reader`, the degraded-mode fallback chains in
:mod:`repro.analysis.pipeline`, and the crash-safe batch scheduler in
:mod:`repro.service.scheduler`.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.diagnostics import DiagnosticEvent, Diagnostics, Severity
from repro.resilience.faults import (
    SERVICE_FAULT_OPS,
    FaultPlan,
    flip_artifact_byte,
    hang_worker,
    sigint_after_n_jobs,
    truncate_artifact,
)
from repro.resilience.inject import (
    CORRUPTION_OPS,
    CorruptionSpec,
    corrupt_trace_text,
)
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "Severity",
    "DiagnosticEvent",
    "Diagnostics",
    "CorruptionSpec",
    "CORRUPTION_OPS",
    "corrupt_trace_text",
    "FaultPlan",
    "SERVICE_FAULT_OPS",
    "hang_worker",
    "sigint_after_n_jobs",
    "truncate_artifact",
    "flip_artifact_byte",
    "RetryPolicy",
    "call_with_retry",
    "CircuitBreaker",
]
