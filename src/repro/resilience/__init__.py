"""Resilience layer: structured diagnostics + deterministic fault injection.

Production traces arrive damaged — truncated files, dropped samples,
multiplexed-counter gaps, clock skew between the sampler and the probes.
This package holds the two halves of the library's answer:

* :mod:`repro.resilience.diagnostics` — the :class:`Diagnostics` object
  every degraded pipeline stage appends to, so a salvaged read or a
  fallback fit is *observable* instead of silent;
* :mod:`repro.resilience.inject` — seedable corruption operators
  (truncate, drop-samples, duplicate-records, NaN-counters, field
  bit-flips, clock skew) that damage a serialized trace the way real
  deployments do, powering the chaos tests and the TAB-8 bench.

The consuming policies live where the data flows: the salvage read policy
in :mod:`repro.trace.reader` and the degraded-mode fallback chains in
:mod:`repro.analysis.pipeline`.
"""

from repro.resilience.diagnostics import DiagnosticEvent, Diagnostics, Severity
from repro.resilience.inject import (
    CORRUPTION_OPS,
    CorruptionSpec,
    corrupt_trace_text,
)

__all__ = [
    "Severity",
    "DiagnosticEvent",
    "Diagnostics",
    "CorruptionSpec",
    "CORRUPTION_OPS",
    "corrupt_trace_text",
]
