"""Bounded retry with deterministic exponential backoff.

Batch analysis jobs fail for reasons worth retrying (a trace file mid-
copy, a transient filesystem error) and reasons that are permanent (a
genuinely unparseable trace).  :func:`call_with_retry` makes that policy
explicit and *observable*: every retry lands a WARNING on the caller's
:class:`~repro.resilience.diagnostics.Diagnostics` and bumps the
``retry.attempts`` counter, and the backoff schedule is deterministic —
no jitter unless the policy asks for it, and jittered schedules draw
from a caller-supplied seeded RNG so re-runs still sleep identically.

Exhaustion raises :class:`~repro.errors.RetryExhaustedError` with the
final attempt's exception preserved as ``__cause__`` — callers that need
the original failure (state classification, error rendering) read it
there rather than parsing messages.  A :class:`CircuitBreaker
<repro.resilience.breaker.CircuitBreaker>` can be threaded through to
shed the remaining attempts once the same failure keeps repeating
(:class:`~repro.errors.CircuitOpenError`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple, Type, TypeVar

from repro.errors import CircuitOpenError, ConfigurationError, RetryExhaustedError
from repro.observability.context import counter as _metric_counter
from repro.resilience.diagnostics import Diagnostics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (breaker uses errors only)
    from repro.resilience.breaker import CircuitBreaker

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between tries.

    ``backoff_base_s`` doubles on each failure: attempt *k* (1-based)
    sleeps ``backoff_base_s * 2**(k-1)`` before retrying, capped at
    ``backoff_max_s``.  The default base of 0 disables sleeping, which
    is what tests and local batch runs over on-disk traces want; a
    service pointed at flaky network storage raises it.

    ``jitter`` spreads the delay uniformly over ``[delay * (1-jitter),
    delay]`` to de-synchronize retry storms across workers.  The draw
    comes from the ``rng`` passed to :meth:`delay_s` — hand every worker
    a :class:`random.Random` seeded from the run seed and the schedule
    stays reproducible.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry policy: max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("retry policy: backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"retry policy: jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_s(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        delay = min(self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_max_s)
        if self.jitter and delay > 0:
            draw = (rng or random).random()
            delay *= 1.0 - self.jitter * draw
        return delay


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    diagnostics: Optional[Diagnostics] = None,
    label: str = "call",
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    breaker: Optional["CircuitBreaker"] = None,
    breaker_key: Optional[str] = None,
) -> T:
    """Invoke ``fn`` up to ``policy.max_attempts`` times.

    Exceptions not matching ``retry_on`` propagate immediately (they are
    permanent by declaration).  When every attempt fails, a
    :class:`~repro.errors.RetryExhaustedError` is raised *from* the final
    attempt's exception, so the real error survives as ``__cause__``.

    When a ``breaker`` is supplied, each failure is recorded under
    ``breaker_key`` (default: ``label``); once the breaker opens, the
    remaining attempts are shed with
    :class:`~repro.errors.CircuitOpenError` instead of burning more
    backoff time on a failure that keeps repeating identically.
    """
    key = breaker_key if breaker_key is not None else label
    if breaker is not None and not breaker.allow(key):
        raise CircuitOpenError(
            f"{label}: circuit open for {key!r}, shedding attempts"
        )
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            opened = breaker is not None and breaker.record_failure(key, exc)
            if attempt == policy.max_attempts:
                # Exhaustion beats circuit-open on the final attempt:
                # there are no remaining attempts left to shed.
                raise RetryExhaustedError(
                    f"{label}: all {policy.max_attempts} attempt(s) failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if opened:
                if diagnostics is not None:
                    diagnostics.warning(
                        "retry",
                        f"{label}: circuit opened after repeated identical "
                        f"failures, shedding remaining attempts",
                        error=f"{type(exc).__name__}: {exc}",
                        attempt=attempt,
                    )
                raise CircuitOpenError(
                    f"{label}: circuit opened after {attempt} attempt(s): "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            _metric_counter("retry.attempts").inc()
            if diagnostics is not None:
                diagnostics.warning(
                    "retry",
                    f"{label}: attempt {attempt}/{policy.max_attempts} failed, "
                    "retrying",
                    error=f"{type(exc).__name__}: {exc}",
                    attempt=attempt,
                )
            delay = policy.delay_s(attempt, rng=rng)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
