"""Bounded retry with deterministic exponential backoff.

Batch analysis jobs fail for reasons worth retrying (a trace file mid-
copy, a transient filesystem error) and reasons that are permanent (a
genuinely unparseable trace).  :func:`call_with_retry` makes that policy
explicit and *observable*: every retry lands a WARNING on the caller's
:class:`~repro.resilience.diagnostics.Diagnostics` and bumps the
``retry.attempts`` counter, and the backoff schedule is deterministic
(no jitter) so test runs and re-runs behave identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigurationError
from repro.observability.context import counter as _metric_counter
from repro.resilience.diagnostics import Diagnostics

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between tries.

    ``backoff_base_s`` doubles on each failure: attempt *k* (1-based)
    sleeps ``backoff_base_s * 2**(k-1)`` before retrying, capped at
    ``backoff_max_s``.  The default base of 0 disables sleeping, which
    is what tests and local batch runs over on-disk traces want; a
    service pointed at flaky network storage raises it.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry policy: max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("retry policy: backoff must be >= 0")

    def delay_s(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        return min(self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_max_s)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    diagnostics: Optional[Diagnostics] = None,
    label: str = "call",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Invoke ``fn`` up to ``policy.max_attempts`` times.

    Exceptions not matching ``retry_on`` propagate immediately (they are
    permanent by declaration).  The exception of the final failed attempt
    propagates unchanged so callers see the real error, with the retry
    history recorded on ``diagnostics`` along the way.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last_error = exc
            if attempt == policy.max_attempts:
                raise
            _metric_counter("retry.attempts").inc()
            if diagnostics is not None:
                diagnostics.warning(
                    "retry",
                    f"{label}: attempt {attempt}/{policy.max_attempts} failed, "
                    "retrying",
                    error=f"{type(exc).__name__}: {exc}",
                    attempt=attempt,
                )
            delay = policy.delay_s(attempt)
            if delay > 0:
                sleep(delay)
    raise AssertionError(f"unreachable: {last_error}")  # pragma: no cover
