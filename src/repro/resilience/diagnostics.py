"""Structured diagnostics: every degradation the pipeline took, on record.

A resilient pipeline that silently patches over damage is worse than a
brittle one — the analyst must be able to ask "what did you do to my
data?".  :class:`Diagnostics` is the answer: an ordered list of
:class:`DiagnosticEvent` entries, one per salvage/fallback decision, each
tagged with a :class:`Severity` and the stage that took it.  The analyzer
attaches one to every :class:`~repro.analysis.pipeline.AnalysisResult`;
``repro check`` renders it on the CLI.

Severity semantics:

* ``INFO`` — normal bookkeeping (e.g. an optional counter folded from a
  subset of instances);
* ``WARNING`` — data was dropped but the primary code path still ran;
* ``DEGRADED`` — a fallback replaced the primary algorithm (quantile eps,
  kernel-smoother breakpoints) so results are approximate;
* ``ERROR`` — a stage failed outright and its output is missing (e.g. a
  cluster skipped wholesale).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from repro.errors import DiagnosticsError
from repro.observability.context import counter as _metric_counter

__all__ = ["Severity", "DiagnosticEvent", "Diagnostics"]


class Severity(enum.IntEnum):
    """How much a recorded event degrades trust in the result."""

    INFO = 0
    WARNING = 1
    DEGRADED = 2
    ERROR = 3

    def __str__(self) -> str:  # "warning", not "Severity.WARNING"
        return self.name.lower()


@dataclass(frozen=True)
class DiagnosticEvent:
    """One salvage/fallback decision taken by a pipeline stage.

    ``stage`` names the pipeline layer ("read", "clustering", "folding",
    "fitting", "phases", "analysis"); ``context`` carries the structured
    specifics (cluster id, counter name, drop counts) so tooling does not
    have to parse the message.
    """

    severity: Severity
    stage: str
    message: str
    context: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = ""
        if self.context:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            detail = f" [{parts}]"
        return f"{self.severity}/{self.stage}: {self.message}{detail}"


class Diagnostics:
    """Ordered collection of the degradations one pipeline run recorded."""

    def __init__(self, events: Optional[List[DiagnosticEvent]] = None) -> None:
        self.events: List[DiagnosticEvent] = list(events or [])

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(
        self, severity: Severity, stage: str, message: str, **context: object
    ) -> DiagnosticEvent:
        """Append one event and return it."""
        event = DiagnosticEvent(
            severity=severity, stage=stage, message=message, context=dict(context)
        )
        self.events.append(event)
        # Bridge to the metrics registry: every salvage/fallback decision
        # is countable without walking event lists (no-op when disabled).
        _metric_counter(f"diagnostics.{severity}").inc()
        _metric_counter(f"diagnostics.stage.{stage}").inc()
        return event

    def info(self, stage: str, message: str, **context: object) -> DiagnosticEvent:
        """Record an INFO event."""
        return self.add(Severity.INFO, stage, message, **context)

    def warning(self, stage: str, message: str, **context: object) -> DiagnosticEvent:
        """Record a WARNING event."""
        return self.add(Severity.WARNING, stage, message, **context)

    def degraded(self, stage: str, message: str, **context: object) -> DiagnosticEvent:
        """Record a DEGRADED event (a fallback replaced the primary path)."""
        return self.add(Severity.DEGRADED, stage, message, **context)

    def error(self, stage: str, message: str, **context: object) -> DiagnosticEvent:
        """Record an ERROR event (a stage's output is missing)."""
        return self.add(Severity.ERROR, stage, message, **context)

    def extend(self, other: "Diagnostics") -> None:
        """Absorb another collection's events (order preserved)."""
        self.events.extend(other.events)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DiagnosticEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def by_severity(self, severity: Severity) -> List[DiagnosticEvent]:
        """Events at exactly ``severity``."""
        return [e for e in self.events if e.severity == severity]

    def by_stage(self, stage: str) -> List[DiagnosticEvent]:
        """Events recorded by ``stage``."""
        return [e for e in self.events if e.stage == stage]

    def count(self, severity: Severity) -> int:
        """Number of events at exactly ``severity``."""
        return len(self.by_severity(severity))

    @property
    def worst(self) -> Optional[Severity]:
        """Highest severity recorded, or ``None`` when clean."""
        if not self.events:
            return None
        return max(e.severity for e in self.events)

    @property
    def clean(self) -> bool:
        """True when nothing above INFO was recorded."""
        worst = self.worst
        return worst is None or worst <= Severity.INFO

    def counts(self) -> Dict[str, int]:
        """Event counts keyed by severity name (only non-zero entries)."""
        out: Dict[str, int] = {}
        for severity in Severity:
            n = self.count(severity)
            if n:
                out[str(severity)] = n
        return out

    # ------------------------------------------------------------------
    # enforcement + rendering
    # ------------------------------------------------------------------
    def raise_if(self, threshold: Severity = Severity.ERROR) -> None:
        """Raise :class:`~repro.errors.DiagnosticsError` when any event
        reaches ``threshold`` — lets strict callers opt back into
        fail-fast behaviour after a degraded run."""
        offenders = [e for e in self.events if e.severity >= threshold]
        if offenders:
            listing = "; ".join(str(e) for e in offenders[:5])
            more = f" (+{len(offenders) - 5} more)" if len(offenders) > 5 else ""
            raise DiagnosticsError(
                f"{len(offenders)} diagnostic(s) at or above "
                f"{threshold}: {listing}{more}"
            )

    def summary(self) -> str:
        """Multi-line human-readable rendering (CLI / report output)."""
        if not self.events:
            return "diagnostics: clean (no events)"
        lines = [f"diagnostics: {len(self.events)} event(s), worst={self.worst}"]
        for event in self.events:
            lines.append(f"  - {event}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Diagnostics({len(self.events)} events, worst={self.worst})"
