"""Tailing record sources: incremental salvage parsing of a growing trace.

Two layers:

* :class:`StreamParser` — a push-down incremental version of the batch
  reader's salvage path.  Text arrives in arbitrary chunks; complete
  lines are parsed with the *same* per-line machinery the batch reader
  uses (:func:`repro.trace.reader._parse_record`,
  :func:`~repro.trace.reader._salvage_dictionary` semantics), torn tails
  are held back until their newline arrives, and damaged lines are
  dropped and counted in a :class:`~repro.trace.reader.SalvageReport`
  exactly like a batch salvage read.  The one deliberate difference: the
  batch reader's duplicate-line set is unbounded, so the stream keeps a
  *bounded* recent-line window (``dedup_window``) — duplicates further
  apart than the window are only caught by the exact finalization pass.
* :class:`TraceTailSource` — the byte feed.  Follows a growing file by
  offset (re-opening per poll, so rotation/late creation are tolerated)
  or drains a text stream (stdin), spooling its bytes to a temp file so
  finalization can re-read the complete input.  Consumed bytes run
  through a rolling sha256 so checkpoints can prove on resume that the
  file's consumed prefix is the one the state was built from.

The source applies backpressure by construction: it is pull-based.
Records are only materialized when the engine asks for the next chunk,
so a slow consumer never buffers more than one chunk of undecoded text.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import IO, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import SalvageError, StreamError
from repro.trace.pcf import EventDictionary
from repro.trace.reader import ReadPolicy, SalvageReport, _parse_record
from repro.trace.records import InstrumentationRecord, SampleRecord, StateRecord
from repro.trace.writer import FORMAT_HEADER

__all__ = ["StreamParser", "TraceTailSource"]

#: One parsed record of any tag.
Record = Union[StateRecord, InstrumentationRecord, SampleRecord]


class StreamParser:
    """Incremental salvage parser over chunked trace text.

    Feed text with :meth:`feed`; it returns the typed records completed
    by that chunk.  State mirrors the batch reader's one-pass section
    machine (``header`` → ``[dict]`` → ``[records]``), with the header
    and dictionary accepted incrementally.  All damage handling is
    salvage-semantics: a live producer's torn tail is *normal*, not an
    error, so strict mode has no place here (exactness is recovered by
    the finalization re-read; see :mod:`repro.stream.engine`).

    The parser is fully serializable (:meth:`state_to_dict` /
    :meth:`from_state`) so a checkpointed stream resumes with identical
    salvage counts and dedup behavior.
    """

    def __init__(self, dedup_window: int = 4096) -> None:
        if dedup_window < 1:
            raise StreamError(f"dedup_window must be >= 1, got {dedup_window}")
        self.dedup_window = dedup_window
        self.report = SalvageReport()
        self.lineno = 0
        self.section = "preamble"  # preamble -> header -> dict -> records
        self.app_name = ""
        self.n_ranks = 0
        self.metadata: Dict[str, str] = {}
        self.max_rank_seen = -1
        self._tail = ""  # torn trailing partial line
        self._dict_lines: List[str] = []  # accepted dictionary lines
        self._dictionary = EventDictionary()
        self._recent: "OrderedDict[str, None]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def effective_ranks(self) -> int:
        """Rank count: from the header, or inferred from records so far."""
        if self.n_ranks >= 1:
            return self.n_ranks
        return self.max_rank_seen + 1

    @property
    def header_seen(self) -> bool:
        """Whether the magic first line has been accepted."""
        return self.section != "preamble"

    # ------------------------------------------------------------------
    def feed(self, text: str) -> List[Record]:
        """Consume a chunk of text; return the records it completed.

        The trailing piece after the last newline is held back (torn
        tail) and prepended to the next chunk.
        """
        if not text:
            return []
        buffered = self._tail + text
        pieces = buffered.split("\n")
        self._tail = pieces.pop()  # "" when the chunk ended on a newline
        out: List[Record] = []
        for piece in pieces:
            record = self._line(piece)
            if record is not None:
                out.append(record)
        return out

    def finish(self) -> List[Record]:
        """Flush the held-back tail at end of stream.

        A tail without its newline is parsed as a final line — if the
        producer died mid-record it is dropped and counted like any other
        damaged line.
        """
        if not self._tail:
            return []
        tail, self._tail = self._tail, ""
        record = self._line(tail)
        return [record] if record is not None else []

    # ------------------------------------------------------------------
    def _line(self, raw: str) -> Optional[Record]:
        self.lineno += 1
        line = raw.strip()
        if self.section == "preamble":
            if not line:
                return None
            if line != FORMAT_HEADER:
                raise SalvageError(
                    f"missing trace header; expected {FORMAT_HEADER!r}, "
                    f"got {line!r}"
                )
            self.section = "header"
            return None
        if not line:
            return None
        if line == "[dict]":
            self.section = "dict"
            return None
        if line == "[records]":
            self.section = "records"
            return None
        if self.section == "header":
            self._header_line(line)
            return None
        if self.section == "dict":
            self._dict_line(line)
            return None
        return self._record_line(line)

    def _header_line(self, line: str) -> None:
        parts = line.split()
        if parts[0] == "app" and len(parts) == 2:
            from repro.trace.reader import _unquote

            self.app_name = _unquote(parts[1])
        elif parts[0] == "ranks" and len(parts) == 2:
            try:
                self.n_ranks = int(parts[1])
            except ValueError:
                self.report.drop_line(self.lineno, line, "header")
        elif parts[0] == "meta" and len(parts) == 3:
            from repro.trace.reader import _unquote

            self.metadata[_unquote(parts[1])] = _unquote(parts[2])
        else:
            self.report.drop_line(self.lineno, line, "header")

    def _dict_line(self, line: str) -> None:
        # Same accept-in-context rule as the batch _salvage_dictionary:
        # a line is kept iff the dictionary still parses with it added.
        from repro.errors import TraceFormatError

        try:
            EventDictionary.from_lines(self._dict_lines + [line])
        except TraceFormatError:
            self.report.drop_line(self.lineno, line, "dictionary")
            return
        self._dict_lines.append(line)
        self._dictionary = EventDictionary.from_lines(self._dict_lines)

    def _record_line(self, line: str) -> Optional[Record]:
        from repro.errors import TraceFormatError

        self.report.n_record_lines += 1
        tag, rest = line[0], line[2:] if len(line) > 2 else ""
        fields = rest.split()
        try:
            record = _parse_record(
                tag, fields, self._dictionary, self.lineno,
                ReadPolicy.SALVAGE, self.report,
            )
        except TraceFormatError as exc:
            self.report.drop_line(
                self.lineno, line, getattr(exc, "reason", "malformed-record")
            )
            return None
        except (ValueError, KeyError):
            self.report.drop_line(self.lineno, line, "malformed-record")
            return None
        if line in self._recent:
            self.report.drop_line(self.lineno, line, "duplicate-record")
            return None
        self._recent[line] = None
        while len(self._recent) > self.dedup_window:
            self._recent.popitem(last=False)
        if self.n_ranks >= 1 and record.rank >= self.n_ranks:
            self.report.drop_line(self.lineno, line, "rank-out-of-range")
            return None
        if record.rank > self.max_rank_seen:
            self.max_rank_seen = record.rank
            if self.n_ranks < 1:
                self.report.inferred_ranks = True
        self.report.n_records_kept += 1
        return record

    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the full parser state."""
        return {
            "dedup_window": self.dedup_window,
            "lineno": self.lineno,
            "section": self.section,
            "app_name": self.app_name,
            "n_ranks": self.n_ranks,
            "metadata": dict(self.metadata),
            "max_rank_seen": self.max_rank_seen,
            "tail": self._tail,
            "dict_lines": list(self._dict_lines),
            "recent": list(self._recent),
            "report": {
                "n_record_lines": self.report.n_record_lines,
                "n_records_kept": self.report.n_records_kept,
                "n_lines_dropped": self.report.n_lines_dropped,
                "n_counters_dropped": self.report.n_counters_dropped,
                "reasons": dict(self.report.reasons),
                "first_bad": list(self.report.first_bad)
                if self.report.first_bad else None,
                "last_bad": list(self.report.last_bad)
                if self.report.last_bad else None,
                "inferred_ranks": self.report.inferred_ranks,
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StreamParser":
        """Rebuild a parser from :meth:`state_to_dict` output."""
        parser = cls(dedup_window=int(state["dedup_window"]))
        parser.lineno = int(state["lineno"])
        parser.section = str(state["section"])
        parser.app_name = str(state["app_name"])
        parser.n_ranks = int(state["n_ranks"])
        parser.metadata = dict(state["metadata"])  # type: ignore[arg-type]
        parser.max_rank_seen = int(state["max_rank_seen"])
        parser._tail = str(state["tail"])
        parser._dict_lines = list(state["dict_lines"])  # type: ignore[arg-type]
        if parser._dict_lines:
            parser._dictionary = EventDictionary.from_lines(parser._dict_lines)
        parser._recent = OrderedDict((line, None) for line in state["recent"])  # type: ignore[union-attr]
        rep = state["report"]
        parser.report.n_record_lines = int(rep["n_record_lines"])  # type: ignore[index]
        parser.report.n_records_kept = int(rep["n_records_kept"])  # type: ignore[index]
        parser.report.n_lines_dropped = int(rep["n_lines_dropped"])  # type: ignore[index]
        parser.report.n_counters_dropped = int(rep["n_counters_dropped"])  # type: ignore[index]
        parser.report.reasons = dict(rep["reasons"])  # type: ignore[index]
        first_bad = rep["first_bad"]  # type: ignore[index]
        last_bad = rep["last_bad"]  # type: ignore[index]
        parser.report.first_bad = (
            (int(first_bad[0]), str(first_bad[1])) if first_bad else None
        )
        parser.report.last_bad = (
            (int(last_bad[0]), str(last_bad[1])) if last_bad else None
        )
        parser.report.inferred_ranks = bool(rep["inferred_ranks"])  # type: ignore[index]
        return parser


@dataclass
class _SpoolState:
    """Bookkeeping of the stdin spool file (stream mode only)."""

    path: str
    handle: IO[str]
    eof: bool = False


class TraceTailSource:
    """Byte feed for a growing trace: file-by-offset or stdin-with-spool.

    File mode (``TraceTailSource(path)``) re-opens the file on every
    :meth:`read_available` call, seeks to the consumed offset and reads
    up to ``chunk_size`` bytes — a file that does not exist *yet* reads
    as empty rather than failing, so a watcher can be started before its
    producer.  Stream mode (``TraceTailSource.from_stream(sys.stdin)``)
    drains the stream in chunks and spools every byte to a temp file so
    :meth:`final_path` can hand the complete input to the exact batch
    re-read at finalization.

    The source maintains a rolling sha256 over consumed bytes; its
    :meth:`prefix_digest` goes into checkpoints, and :meth:`seek_to`
    verifies it on resume by re-hashing the file prefix.
    """

    def __init__(self, path: str, chunk_size: int = 1 << 16) -> None:
        if chunk_size < 1:
            raise StreamError(f"chunk_size must be >= 1, got {chunk_size}")
        self.path = path
        self.chunk_size = chunk_size
        self.offset = 0
        self._hasher = hashlib.sha256()
        self._spool: Optional[_SpoolState] = None

    @classmethod
    def from_stream(
        cls,
        stream: IO[str],
        chunk_size: int = 1 << 16,
        spool_dir: Optional[str] = None,
    ) -> "TraceTailSource":
        """Source draining ``stream`` (e.g. stdin), spooling to a file."""
        fd, spool_path = tempfile.mkstemp(
            prefix="repro-watch-spool-", suffix=".rpt", dir=spool_dir
        )
        handle = os.fdopen(fd, "w", encoding="utf-8")
        source = cls(spool_path, chunk_size=chunk_size)
        source._spool = _SpoolState(path=spool_path, handle=handle)
        source._stream = stream  # type: ignore[attr-defined]
        return source

    # ------------------------------------------------------------------
    @property
    def is_stream(self) -> bool:
        """True in stdin/spool mode."""
        return self._spool is not None

    @property
    def at_eof(self) -> bool:
        """Stream mode: whether the input stream is exhausted.

        File mode never reports EOF — the file may still grow; idleness
        is the engine's judgement (``--until-idle``).
        """
        return self._spool is not None and self._spool.eof

    def read_available(self) -> str:
        """Return the next chunk of new text (possibly empty)."""
        if self._spool is not None:
            return self._read_stream()
        return self._read_file()

    def _read_file(self) -> str:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                data = handle.read(self.chunk_size)
        except FileNotFoundError:
            return ""
        if not data:
            return ""
        # Hold back a torn multi-byte UTF-8 tail so decode never splits a
        # character (traces are ASCII in practice, but cheap to be exact).
        while data:
            try:
                text = data.decode("utf-8")
                break
            except UnicodeDecodeError as exc:
                if exc.reason.startswith("unexpected end of data") or (
                    len(data) - exc.start <= 3
                ):
                    data = data[: exc.start]
                    if not data:
                        return ""
                else:
                    raise StreamError(
                        f"{self.path}: undecodable bytes at offset "
                        f"{self.offset + exc.start}"
                    ) from None
        self.offset += len(data)
        self._hasher.update(data)
        return text

    def _read_stream(self) -> str:
        assert self._spool is not None
        if self._spool.eof:
            return ""
        text = self._stream.read(self.chunk_size)  # type: ignore[attr-defined]
        if text == "":
            self._spool.eof = True
            self._spool.handle.flush()
            return ""
        self._spool.handle.write(text)
        self._spool.handle.flush()
        data = text.encode("utf-8")
        self.offset += len(data)
        self._hasher.update(data)
        return text

    def drain(self) -> Iterator[str]:
        """Yield chunks until the source has no more bytes *right now*."""
        while True:
            text = self.read_available()
            if not text:
                return
            yield text

    # ------------------------------------------------------------------
    def prefix_digest(self) -> str:
        """sha256 (hex) of every byte consumed so far."""
        return self._hasher.copy().hexdigest()

    def seek_to(self, offset: int, expected_digest: str) -> None:
        """Position a fresh file source at ``offset``, verifying that the
        on-disk prefix hashes to ``expected_digest`` (checkpoint resume).
        """
        if self.is_stream:
            raise StreamError("cannot seek a stream source (no stable prefix)")
        hasher = hashlib.sha256()
        remaining = offset
        try:
            with open(self.path, "rb") as handle:
                while remaining > 0:
                    data = handle.read(min(remaining, 1 << 20))
                    if not data:
                        break
                    hasher.update(data)
                    remaining -= len(data)
        except FileNotFoundError:
            raise StreamError(
                f"cannot resume: {self.path} does not exist"
            ) from None
        if remaining > 0:
            raise StreamError(
                f"cannot resume: {self.path} is shorter ({offset - remaining} "
                f"bytes) than the checkpointed offset ({offset})"
            )
        digest = hasher.hexdigest()
        if digest != expected_digest:
            raise StreamError(
                f"cannot resume: the first {offset} bytes of {self.path} "
                f"changed since the checkpoint (digest {digest[:12]} != "
                f"{expected_digest[:12]})"
            )
        self.offset = offset
        self._hasher = hasher

    def final_path(self) -> str:
        """Path of the complete input for the exact finalization re-read."""
        if self._spool is not None:
            if not self._spool.handle.closed:
                self._spool.handle.flush()
            return self._spool.path
        return self.path

    def close(self) -> None:
        """Release the spool handle (stream mode; no-op in file mode).

        The spool *file* is left on disk — finalization may still need
        it; the engine's caller removes it when done.
        """
        if self._spool is not None and not self._spool.handle.closed:
            self._spool.handle.close()
