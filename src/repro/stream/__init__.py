"""Live phase detection over growing traces (``repro watch``).

The batch pipeline needs a complete trace; this package follows one that
is still being written — by a running application, a ``tail``-style
producer, or stdin — and keeps an approximate phase model warm while the
trace grows:

* :mod:`repro.stream.source` — tailing byte source (file or stdin
  spool) and the incremental salvage parser built on the batch reader's
  per-line machinery;
* :mod:`repro.stream.assembly` — incremental burst assembly replicating
  the batch extractor's pairing semantics with watermark-gated sample
  attachment;
* :mod:`repro.stream.model` — frozen-scaler online cluster assignment,
  bounded reservoirs, drift detection;
* :mod:`repro.stream.engine` — the orchestrating engine: telemetry
  events, periodic PWLR refits, the follow loop, and exact batch
  finalization (the convergence guarantee);
* :mod:`repro.stream.checkpoint` — atomic checkpoint/resume.

The contract that makes the approximation safe: once the trace stops
growing and the stream finalizes, the emitted result is byte-identical
(through the store codec) to a cold ``repro analyze`` of the same file.
``repro selftest`` enforces it differentially.
"""

from repro.stream.assembly import IncrementalBurstAssembler
from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    resume_engine,
    save_checkpoint,
)
from repro.stream.engine import StreamConfig, StreamEngine, StreamReport
from repro.stream.model import ClusterReservoir, DriftWindow, OnlineClusterModel
from repro.stream.source import StreamParser, TraceTailSource

__all__ = [
    "StreamParser",
    "TraceTailSource",
    "IncrementalBurstAssembler",
    "OnlineClusterModel",
    "ClusterReservoir",
    "DriftWindow",
    "StreamConfig",
    "StreamEngine",
    "StreamReport",
    "CHECKPOINT_FORMAT",
    "save_checkpoint",
    "load_checkpoint",
    "resume_engine",
]
