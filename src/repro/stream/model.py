"""Online cluster model: frozen-scaler assignment + bounded re-clustering.

The batch pipeline clusters all bursts at once (features → DBSCAN).  The
stream cannot, so it splits the problem in two:

* **Fit** (:meth:`OnlineClusterModel.fit`) — run the batch feature
  construction and DBSCAN (including the pipeline's pairwise-quantile
  eps fallback) over a bounded set of bursts, then *freeze* the feature
  scaling (means/scales) and summarize each cluster by its centroid.
* **Assign** (:meth:`OnlineClusterModel.assign`) — project each new
  burst through the frozen scaling and attach it to the nearest centroid
  within ``assign_factor * eps``, or declare it noise.  O(k·d) per
  burst, no global re-clustering.

Drift is detected from the assignment stream itself: a sliding window of
recent assignments whose noise fraction exceeds a threshold trips a
model refresh, which re-fits over the bounded reservoir contents
(:class:`ClusterReservoir`) — so a refresh costs O(reservoir), never
O(trace).

Everything is deterministic and serializable for checkpoint/resume.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ClusteringError, StreamError
from repro.clustering.bursts import BurstSet, ComputationBurst
from repro.clustering.dbscan import DBSCAN, estimate_eps, estimate_eps_quantile
from repro.clustering.features import build_features

__all__ = ["ClusterReservoir", "OnlineClusterModel", "DriftWindow"]

#: DBSCAN's noise label, re-exported for readability.
NOISE = -1


class ClusterReservoir:
    """Bounded uniform sample of one cluster's bursts (Algorithm R).

    Holds at most ``capacity`` bursts; each of the ``n_seen`` bursts ever
    offered has equal probability of being retained.  Bursts carrying
    more than ``max_samples_per_burst`` attached samples are thinned by a
    deterministic stride subsample (first and last kept) on the way in,
    so the documented memory ceiling holds sample-wise too.

    The RNG is owned by the engine and passed per call so one seeded
    sequence drives every reservoir deterministically.
    """

    def __init__(self, capacity: int, max_samples_per_burst: int = 0) -> None:
        if capacity < 1:
            raise StreamError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.max_samples_per_burst = max_samples_per_burst
        self.items: List[ComputationBurst] = []
        self.n_seen = 0

    def add(self, burst: ComputationBurst, rng: np.random.Generator) -> None:
        """Offer one burst; retained with probability capacity/n_seen."""
        burst = self._thin(burst)
        self.n_seen += 1
        if len(self.items) < self.capacity:
            self.items.append(burst)
            return
        j = int(rng.integers(0, self.n_seen))
        if j < self.capacity:
            self.items[j] = burst

    def _thin(self, burst: ComputationBurst) -> ComputationBurst:
        cap = self.max_samples_per_burst
        if cap <= 0 or len(burst.samples) <= cap:
            return burst
        n = len(burst.samples)
        idx = np.unique(np.linspace(0, n - 1, cap).round().astype(int))
        thinned = ComputationBurst(
            rank=burst.rank,
            index=burst.index,
            t_start=burst.t_start,
            t_end=burst.t_end,
            start_counters=dict(burst.start_counters),
            end_counters=dict(burst.end_counters),
        )
        thinned.samples = [burst.samples[i] for i in idx]
        return thinned

    @property
    def n_retained(self) -> int:
        """Bursts currently held (<= capacity)."""
        return len(self.items)


class DriftWindow:
    """Sliding window of assignment outcomes tripping model refreshes."""

    def __init__(self, size: int, noise_threshold: float) -> None:
        if size < 4:
            raise StreamError(f"drift window must be >= 4, got {size}")
        if not 0.0 < noise_threshold <= 1.0:
            raise StreamError(
                f"drift noise threshold must be in (0, 1], got {noise_threshold}"
            )
        self.size = size
        self.noise_threshold = noise_threshold
        self.outcomes: Deque[bool] = deque(maxlen=size)  # True = noise

    def push(self, is_noise: bool) -> bool:
        """Record one assignment; True when the window trips."""
        self.outcomes.append(is_noise)
        if len(self.outcomes) < self.size:
            return False
        return (sum(self.outcomes) / len(self.outcomes)) > self.noise_threshold

    def reset(self) -> None:
        """Clear the window (after a refresh, successful or not)."""
        self.outcomes.clear()

    @property
    def noise_fraction(self) -> float:
        """Current fraction of noise outcomes in the window."""
        if not self.outcomes:
            return 0.0
        return sum(self.outcomes) / len(self.outcomes)


class OnlineClusterModel:
    """Frozen feature scaling + cluster centroids for online assignment."""

    def __init__(
        self,
        feature_names: List[str],
        means: np.ndarray,
        scales: np.ndarray,
        centroids: np.ndarray,
        eps: float,
        min_pts: int,
        assign_factor: float,
    ) -> None:
        self.feature_names = list(feature_names)
        self.means = np.asarray(means, dtype=float)
        self.scales = np.asarray(scales, dtype=float)
        self.centroids = np.asarray(centroids, dtype=float)
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.assign_factor = float(assign_factor)
        self.n_fitted = 0  # bursts the fit saw (diagnostics)
        self.used_fallback_eps = False

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        bursts: List[ComputationBurst],
        min_pts: int,
        assign_factor: float,
    ) -> Tuple[Optional["OnlineClusterModel"], Optional[np.ndarray]]:
        """Fit features + DBSCAN over ``bursts``; summarize as centroids.

        Returns ``(model, labels)`` — labels align with ``bursts`` so the
        caller can seed reservoirs from the fit itself — or ``(None,
        None)`` when the bursts cannot support a model yet (too few, no
        pivot counter, zero clusters): the stream keeps warming up.
        """
        if len(bursts) < max(min_pts, 2):
            return None, None
        try:
            features = build_features(BurstSet(list(bursts)))
        except ClusteringError:
            return None, None
        used_fallback = False
        try:
            eps = estimate_eps(features.values, k=min_pts)
            if eps <= 1e-8:
                raise ClusteringError("degenerate k-dist eps")
        except ClusteringError:
            eps = None
        if eps is not None:
            result = DBSCAN(eps=eps, min_pts=min_pts).fit(features.values)
            if result.n_clusters == 0:
                eps = None
        if eps is None:
            # Mirror the batch pipeline's degraded-mode fallback chain.
            try:
                eps = estimate_eps_quantile(features.values)
                result = DBSCAN(eps=eps, min_pts=min_pts).fit(features.values)
            except ClusteringError:
                return None, None
            used_fallback = True
        if result.n_clusters == 0:
            return None, None
        centroids = np.stack(
            [
                features.values[result.labels == cid].mean(axis=0)
                for cid in range(result.n_clusters)
            ]
        )
        model = cls(
            feature_names=features.feature_names,
            means=features.means,
            scales=features.stds,  # build_features stores floored scales here
            centroids=centroids,
            eps=float(eps),
            min_pts=min_pts,
            assign_factor=assign_factor,
        )
        model.n_fitted = len(bursts)
        model.used_fallback_eps = used_fallback
        return model, result.labels

    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        """Number of centroids."""
        return int(self.centroids.shape[0])

    def transform(self, burst: ComputationBurst) -> Optional[np.ndarray]:
        """Project one burst through the frozen scaling, or None when the
        burst cannot produce a complete finite feature vector."""
        if not burst.has_counter("PAPI_TOT_INS"):
            return None
        instructions = burst.delta("PAPI_TOT_INS")
        if not (math.isfinite(instructions) and instructions > 0):
            return None
        raw = np.empty(len(self.feature_names))
        for i, name in enumerate(self.feature_names):
            if name == "log10_duration":
                raw[i] = math.log10(burst.duration)
            else:
                counter = name[: -len("_per_ins")]
                if not burst.has_counter(counter):
                    return None
                raw[i] = burst.delta(counter) / instructions
        if not np.all(np.isfinite(raw)):
            return None
        return (raw - self.means) / self.scales

    def assign(self, burst: ComputationBurst) -> int:
        """Cluster id of the nearest centroid within the assignment
        radius, or :data:`NOISE`."""
        vector = self.transform(burst)
        if vector is None:
            return NOISE
        distances = np.linalg.norm(self.centroids - vector, axis=1)
        best = int(np.argmin(distances))
        if distances[best] <= self.assign_factor * self.eps:
            return best
        return NOISE

    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the model."""
        return {
            "feature_names": list(self.feature_names),
            "means": self.means.tolist(),
            "scales": self.scales.tolist(),
            "centroids": self.centroids.tolist(),
            "eps": self.eps,
            "min_pts": self.min_pts,
            "assign_factor": self.assign_factor,
            "n_fitted": self.n_fitted,
            "used_fallback_eps": self.used_fallback_eps,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "OnlineClusterModel":
        """Rebuild a model from :meth:`state_to_dict` output."""
        model = cls(
            feature_names=list(state["feature_names"]),  # type: ignore[arg-type]
            means=np.asarray(state["means"], dtype=float),
            scales=np.asarray(state["scales"], dtype=float),
            centroids=np.asarray(state["centroids"], dtype=float),
            eps=float(state["eps"]),
            min_pts=int(state["min_pts"]),
            assign_factor=float(state["assign_factor"]),
        )
        model.n_fitted = int(state["n_fitted"])
        model.used_fallback_eps = bool(state["used_fallback_eps"])
        return model
