"""Incremental computation-burst assembly from a record stream.

Replicates the batch extractor's per-rank pairing state machine
(:func:`repro.clustering.bursts.extract_bursts`) one record at a time:
the initial zero-counter boundary at t=0, mispaired-probe counting, the
``t_end > t_start`` and minimum-duration screens, and per-rank index
numbering that counts only emitted bursts.

The streaming twist is sample attachment.  The batch extractor sees all
samples at once and attaches those strictly inside ``(t_start, t_end)``;
a stream cannot know a burst's samples are complete until later records
prove it.  Closed bursts therefore wait in a per-rank *pending* queue
until the rank's sample watermark (the latest sample time seen) passes
their ``t_end`` — at which point every sample that can ever belong to
them has arrived, they are emitted with their samples attached, and the
consumed sample prefix is discarded.  This is exact for time-ordered
producers (the :class:`~repro.trace.writer.TraceTailWriter` discipline)
and safely approximate otherwise: a sample arriving behind the watermark
after its burst was emitted is counted as late and ignored — the online
model sees slightly thinner bursts, and the finalization re-read
restores exactness.

Memory stays bounded even for pathological inputs (e.g. a batch-written
file whose sample section trails all probes): when a rank's pending
queue exceeds ``max_pending`` its oldest burst is emitted with whatever
samples have arrived, counted in ``forced_emissions``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import StreamError
from repro.clustering.bursts import ComputationBurst
from repro.trace.records import InstrumentationRecord, SampleRecord, StateRecord

__all__ = ["IncrementalBurstAssembler", "burst_to_dict", "burst_from_dict"]

Record = Union[StateRecord, InstrumentationRecord, SampleRecord]


@dataclass
class _RankState:
    """Pairing + attachment state of one rank."""

    #: (time, counters) of the open comm_exit boundary; None while inside
    #: communication.  Seeded with (0.0, zeros) on the first probe.
    open_boundary: Optional[Tuple[float, Dict[str, float]]] = None
    seen_probe: bool = False
    #: Closed (t0, c0, t1, c1) intervals waiting for their samples.
    pending: List[Tuple[float, Dict[str, float], float, Dict[str, float]]] = field(
        default_factory=list
    )
    #: Buffered samples not yet consumed by an emitted burst.
    samples: List[SampleRecord] = field(default_factory=list)
    #: Latest sample time seen (the attachment watermark).
    watermark: float = float("-inf")
    #: ``t_end`` of the last emitted burst — samples at or before this
    #: can never attach to anything anymore.
    consumed_until: float = float("-inf")
    #: Per-rank index of the next emitted burst.
    index: int = 0


class IncrementalBurstAssembler:
    """Record stream → :class:`~repro.clustering.bursts.ComputationBurst`s.

    Feed records with :meth:`feed`; completed bursts come back as soon as
    their sample set is provably complete.  :meth:`flush` drains every
    still-pending burst at end of stream.  Counters mirror the batch
    extractor's ``mispaired`` dict plus streaming-only ``late_samples``
    and ``forced_emissions``.
    """

    def __init__(
        self, min_duration: float = 0.0, max_pending: int = 256
    ) -> None:
        if max_pending < 1:
            raise StreamError(f"max_pending must be >= 1, got {max_pending}")
        self.min_duration = min_duration
        self.max_pending = max_pending
        self.mispaired: Dict[int, int] = {}
        self.late_samples = 0
        self.forced_emissions = 0
        self.n_bursts = 0
        self._ranks: Dict[int, _RankState] = {}

    # ------------------------------------------------------------------
    def feed(self, record: Record) -> List[ComputationBurst]:
        """Consume one record; return any bursts it completed."""
        if isinstance(record, InstrumentationRecord):
            return self._probe(record)
        if isinstance(record, SampleRecord):
            return self._sample(record)
        return []  # StateRecord: not used for burst extraction

    def flush(self) -> List[ComputationBurst]:
        """Emit every pending burst with the samples that arrived.

        Call at end of stream; an open boundary (a comm_exit whose enter
        never arrived) is discarded, matching the batch extractor.
        """
        out: List[ComputationBurst] = []
        for rank in sorted(self._ranks):
            out.extend(self._emit_ready(rank, force_all=True))
        return out

    # ------------------------------------------------------------------
    def _state(self, rank: int) -> _RankState:
        state = self._ranks.get(rank)
        if state is None:
            state = self._ranks[rank] = _RankState()
        return state

    def _probe(self, probe: InstrumentationRecord) -> List[ComputationBurst]:
        state = self._state(probe.rank)
        if not state.seen_probe:
            # Batch semantics: the region from t=0 (zero counters, keyed
            # by the *first* probe's counter set) to the first comm_enter
            # is a burst.
            state.open_boundary = (
                0.0, {name: 0.0 for name in probe.counters}
            )
            state.seen_probe = True
        if probe.marker == "comm_enter":
            if state.open_boundary is None:
                # enter with no preceding exit: its exit was lost
                self.mispaired[probe.rank] = self.mispaired.get(probe.rank, 0) + 1
                return []
            t0, c0 = state.open_boundary
            state.open_boundary = None
            if probe.time > t0 and (probe.time - t0) >= self.min_duration:
                state.pending.append((t0, c0, probe.time, dict(probe.counters)))
                return self._emit_ready(probe.rank)
            return []
        # comm_exit
        if state.open_boundary is not None and state.open_boundary[0] != 0.0:
            # two exits in a row: the burst in between lost its enter probe
            self.mispaired[probe.rank] = self.mispaired.get(probe.rank, 0) + 1
        state.open_boundary = (probe.time, dict(probe.counters))
        return []

    def _sample(self, sample: SampleRecord) -> List[ComputationBurst]:
        state = self._state(sample.rank)
        if sample.time <= state.consumed_until:
            # Its burst was already emitted (every future burst attaches
            # strictly after consumed_until): the online model missed it.
            self.late_samples += 1
            return []
        state.samples.append(sample)
        if sample.time > state.watermark:
            state.watermark = sample.time
        return self._emit_ready(sample.rank)

    # ------------------------------------------------------------------
    def _emit_ready(self, rank: int, force_all: bool = False) -> List[ComputationBurst]:
        state = self._ranks[rank]
        out: List[ComputationBurst] = []
        while state.pending:
            t0, c0, t1, c1 = state.pending[0]
            ready = force_all or state.watermark >= t1
            if not ready and len(state.pending) > self.max_pending:
                # Bounded-memory escape hatch: a producer that defers all
                # samples (batch-written section order) must not grow the
                # queue without limit.  Emit the oldest burst with what
                # arrived; late samples for it will be counted, and the
                # finalization re-read restores exactness.
                self.forced_emissions += 1
                ready = True
            if not ready:
                break
            state.pending.pop(0)
            out.append(self._build(rank, state, t0, c0, t1, c1))
        return out

    def _build(
        self,
        rank: int,
        state: _RankState,
        t0: float,
        c0: Dict[str, float],
        t1: float,
        c1: Dict[str, float],
    ) -> ComputationBurst:
        # Batch semantics: samples strictly inside (t0, t1), time-sorted
        # with a stable sort so arrival order breaks ties.
        state.samples.sort(key=lambda s: s.time)
        times = [s.time for s in state.samples]
        lo = bisect.bisect_right(times, t0)
        hi = bisect.bisect_left(times, t1)
        burst = ComputationBurst(
            rank=rank,
            index=state.index,
            t_start=t0,
            t_end=t1,
            start_counters=dict(c0),
            end_counters=dict(c1),
        )
        burst.samples = state.samples[lo:hi]
        # Samples at or before t1 can never attach to a later burst
        # (the next burst opens at t >= t1 and attaches strictly after
        # its own t_start).
        state.samples = state.samples[hi:]
        state.consumed_until = t1
        state.index += 1
        self.n_bursts += 1
        return burst

    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Bursts currently waiting for their sample watermark."""
        return sum(len(s.pending) for s in self._ranks.values())

    @property
    def n_buffered_samples(self) -> int:
        """Samples currently buffered across all ranks."""
        return sum(len(s.samples) for s in self._ranks.values())

    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the full assembler state."""
        return {
            "min_duration": self.min_duration,
            "max_pending": self.max_pending,
            "mispaired": {str(k): v for k, v in self.mispaired.items()},
            "late_samples": self.late_samples,
            "forced_emissions": self.forced_emissions,
            "n_bursts": self.n_bursts,
            "ranks": {
                str(rank): {
                    "open_boundary": (
                        [state.open_boundary[0], dict(state.open_boundary[1])]
                        if state.open_boundary is not None
                        else None
                    ),
                    "seen_probe": state.seen_probe,
                    "pending": [
                        [t0, dict(c0), t1, dict(c1)]
                        for t0, c0, t1, c1 in state.pending
                    ],
                    "samples": [_sample_to_dict(s) for s in state.samples],
                    "watermark": state.watermark,
                    "consumed_until": state.consumed_until,
                    "index": state.index,
                }
                for rank, state in self._ranks.items()
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IncrementalBurstAssembler":
        """Rebuild an assembler from :meth:`state_to_dict` output."""
        asm = cls(
            min_duration=float(state["min_duration"]),
            max_pending=int(state["max_pending"]),
        )
        asm.mispaired = {int(k): int(v) for k, v in state["mispaired"].items()}  # type: ignore[union-attr]
        asm.late_samples = int(state["late_samples"])
        asm.forced_emissions = int(state["forced_emissions"])
        asm.n_bursts = int(state["n_bursts"])
        for rank_text, data in state["ranks"].items():  # type: ignore[union-attr]
            rank_state = _RankState(
                open_boundary=(
                    (float(data["open_boundary"][0]), dict(data["open_boundary"][1]))
                    if data["open_boundary"] is not None
                    else None
                ),
                seen_probe=bool(data["seen_probe"]),
                pending=[
                    (float(t0), dict(c0), float(t1), dict(c1))
                    for t0, c0, t1, c1 in data["pending"]
                ],
                samples=[_sample_from_dict(s) for s in data["samples"]],
                watermark=float(data["watermark"]),
                consumed_until=float(data["consumed_until"]),
                index=int(data["index"]),
            )
            asm._ranks[int(rank_text)] = rank_state
        return asm


def burst_to_dict(burst: ComputationBurst) -> Dict[str, object]:
    """Serialize one burst (with attached samples) for checkpoints."""
    return {
        "rank": burst.rank,
        "index": burst.index,
        "t_start": burst.t_start,
        "t_end": burst.t_end,
        "start_counters": dict(burst.start_counters),
        "end_counters": dict(burst.end_counters),
        "samples": [_sample_to_dict(s) for s in burst.samples],
    }


def burst_from_dict(data: Dict[str, object]) -> ComputationBurst:
    """Rebuild a burst from :func:`burst_to_dict` output."""
    burst = ComputationBurst(
        rank=int(data["rank"]),
        index=int(data["index"]),
        t_start=float(data["t_start"]),
        t_end=float(data["t_end"]),
        start_counters={str(k): float(v) for k, v in data["start_counters"].items()},  # type: ignore[union-attr]
        end_counters={str(k): float(v) for k, v in data["end_counters"].items()},  # type: ignore[union-attr]
    )
    burst.samples = [_sample_from_dict(s) for s in data["samples"]]  # type: ignore[union-attr]
    return burst


def _sample_to_dict(sample: SampleRecord) -> Dict[str, object]:
    return {
        "rank": sample.rank,
        "time": sample.time,
        "counters": dict(sample.counters),
        "frames": [list(frame) for frame in sample.frames],
    }


def _sample_from_dict(data: Dict[str, object]) -> SampleRecord:
    return SampleRecord(
        rank=int(data["rank"]),
        time=float(data["time"]),
        counters={str(k): float(v) for k, v in data["counters"].items()},  # type: ignore[union-attr]
        frames=tuple(
            (str(r), str(p), int(ln)) for r, p, ln in data["frames"]  # type: ignore[union-attr]
        ),
    )
