"""The live streaming engine behind ``repro watch``.

:class:`StreamEngine` wires the incremental pieces together:

    bytes → :class:`~repro.stream.source.StreamParser` (salvage parse)
          → :class:`~repro.stream.assembly.IncrementalBurstAssembler`
          → :class:`~repro.stream.model.OnlineClusterModel` (assign)
          → per-cluster :class:`~repro.stream.model.ClusterReservoir`
          → periodic fold + PWLR refit → phase-change / drift events

It follows a *lambda architecture*: the online path keeps strictly
bounded state (reservoirs, pending bursts, a drift window) and exists to
power live monitoring — telemetry events on the active
:class:`~repro.observability.events.TelemetryBus`, ``stream.live.*``
gauges for the OpenMetrics endpoint — while :meth:`finalize` re-reads
the completed trace through the exact batch pipeline
(:func:`~repro.trace.reader.read_trace` →
:class:`~repro.analysis.pipeline.FoldingAnalyzer`), so the finalized
:class:`~repro.analysis.pipeline.AnalysisResult` is byte-identical
(through the store codec) to a cold ``repro analyze`` of the same file.
The ``stream`` selftest suite enforces that contract.

Every piece of engine state serializes (:meth:`StreamEngine.state_to_dict`
/ :meth:`StreamEngine.from_state`) for checkpoint/resume; see
:mod:`repro.stream.checkpoint`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.pipeline import AnalysisResult, AnalyzerConfig, FoldingAnalyzer
from repro.clustering.bursts import BurstSet, ComputationBurst
from repro.errors import FittingError, FoldingError, PhaseError, StreamError
from repro.folding.fold import fold_cluster
from repro.folding.instances import select_instances
from repro.observability.context import DISABLED, gauge, publish
from repro.phases.detect import detect_phases
from repro.store import config_from_dict, config_to_dict
from repro.stream.assembly import (
    IncrementalBurstAssembler,
    burst_from_dict,
    burst_to_dict,
)
from repro.stream.model import NOISE, ClusterReservoir, DriftWindow, OnlineClusterModel
from repro.stream.source import StreamParser, TraceTailSource
from repro.trace.reader import read_trace, read_trace_salvaged

__all__ = ["StreamConfig", "StreamEngine", "StreamReport"]


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs of the streaming engine.

    ``analyzer`` is the batch configuration used verbatim at
    finalization — the convergence guarantee is *defined* against it.
    The remaining knobs bound the online path: the warmup size before the
    first model fit, the per-cluster reservoir capacity and per-burst
    sample cap (together the memory ceiling, see ``docs/STREAMING.md``),
    the refit cadence, the drift window, and the assignment radius
    multiplier.  ``salvage`` selects the finalization read policy (and
    must match the batch side being compared against).
    """

    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)
    warmup_bursts: int = 48
    reservoir_capacity: int = 64
    max_samples_per_burst: int = 512
    refit_every: int = 32
    drift_window: int = 64
    drift_noise_threshold: float = 0.30
    assign_factor: float = 1.5
    slope_shift_factor: float = 1.5
    max_pending_bursts: int = 256
    dedup_window: int = 4096
    progress_every_records: int = 5000
    seed: int = 0
    salvage: bool = False

    def __post_init__(self) -> None:
        if self.warmup_bursts < 2:
            raise StreamError(f"warmup_bursts must be >= 2, got {self.warmup_bursts}")
        if self.reservoir_capacity < self.analyzer.min_instances:
            raise StreamError(
                f"reservoir_capacity ({self.reservoir_capacity}) must be >= "
                f"analyzer.min_instances ({self.analyzer.min_instances}) or "
                f"refits could never run"
            )
        if self.refit_every < 1:
            raise StreamError(f"refit_every must be >= 1, got {self.refit_every}")
        if self.progress_every_records < 1:
            raise StreamError(
                f"progress_every_records must be >= 1, "
                f"got {self.progress_every_records}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serializable view (checkpoints embed this for compatibility
        checks at resume time)."""
        out: Dict[str, object] = {"analyzer": config_to_dict(self.analyzer)}
        for name in (
            "warmup_bursts",
            "reservoir_capacity",
            "max_samples_per_burst",
            "refit_every",
            "drift_window",
            "drift_noise_threshold",
            "assign_factor",
            "slope_shift_factor",
            "max_pending_bursts",
            "dedup_window",
            "progress_every_records",
            "seed",
            "salvage",
        ):
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        kwargs = dict(data)
        kwargs["analyzer"] = config_from_dict(kwargs["analyzer"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class _ClusterState:
    """Live refit bookkeeping of one assigned cluster."""

    n_assigned: int = 0
    n_since_refit: int = 0
    n_refits: int = 0
    n_refit_failures: int = 0
    #: Last successful refit summary, or None before the first one.
    n_phases: Optional[int] = None
    mean_slope: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_assigned": self.n_assigned,
            "n_since_refit": self.n_since_refit,
            "n_refits": self.n_refits,
            "n_refit_failures": self.n_refit_failures,
            "n_phases": self.n_phases,
            "mean_slope": self.mean_slope,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "_ClusterState":
        return cls(
            n_assigned=int(data["n_assigned"]),
            n_since_refit=int(data["n_since_refit"]),
            n_refits=int(data["n_refits"]),
            n_refit_failures=int(data["n_refit_failures"]),
            n_phases=None if data["n_phases"] is None else int(data["n_phases"]),  # type: ignore[arg-type]
            mean_slope=(
                None if data["mean_slope"] is None else float(data["mean_slope"])  # type: ignore[arg-type]
            ),
        )


@dataclass
class StreamReport:
    """Summary of one streaming run (live view and final footer)."""

    n_records: int
    n_dropped_lines: int
    n_bursts: int
    n_assigned: int
    n_noise: int
    n_clusters: int
    n_model_refreshes: int
    n_refits: int
    n_phase_changes: int
    n_drift_events: int
    n_checkpoints: int
    n_forced_emissions: int
    n_late_samples: int
    n_retained_bursts: int
    model_ready: bool
    finalized: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-able view (the ``stream`` key of ``watch --json``)."""
        return dict(self.__dict__)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "stream summary",
            f"  records            {self.n_records}"
            + (f" ({self.n_dropped_lines} lines dropped)" if self.n_dropped_lines else ""),
            f"  bursts             {self.n_bursts}"
            + (f" ({self.n_forced_emissions} forced)" if self.n_forced_emissions else ""),
            f"  model              "
            + (
                f"{self.n_clusters} clusters, "
                f"{self.n_assigned} assigned / {self.n_noise} noise, "
                f"{self.n_model_refreshes} refresh(es)"
                if self.model_ready
                else "still warming up"
            ),
            f"  refits             {self.n_refits} "
            f"({self.n_phase_changes} phase change(s), "
            f"{self.n_drift_events} drift event(s))",
            f"  retained bursts    {self.n_retained_bursts}"
            + (f" (late samples: {self.n_late_samples})" if self.n_late_samples else ""),
        ]
        if self.n_checkpoints:
            lines.append(f"  checkpoints        {self.n_checkpoints}")
        lines.append(
            f"  finalized          {'yes' if self.finalized else 'no'}"
        )
        return "\n".join(lines)


class StreamEngine:
    """Incremental phase detection over a growing record stream."""

    def __init__(self, config: Optional[StreamConfig] = None) -> None:
        self.config = config or StreamConfig()
        self.parser = StreamParser(dedup_window=self.config.dedup_window)
        self.assembler = IncrementalBurstAssembler(
            min_duration=self.config.analyzer.min_burst_duration_s,
            max_pending=self.config.max_pending_bursts,
        )
        self.model: Optional[OnlineClusterModel] = None
        self.rng = np.random.default_rng(self.config.seed)
        self.warmup = ClusterReservoir(
            capacity=max(4 * self.config.warmup_bursts, self.config.warmup_bursts),
            max_samples_per_burst=self.config.max_samples_per_burst,
        )
        self.reservoirs: Dict[int, ClusterReservoir] = {}
        self.drift = DriftWindow(
            self.config.drift_window, self.config.drift_noise_threshold
        )
        self.clusters: Dict[int, _ClusterState] = {}
        self.n_records = 0
        self.n_bursts = 0
        self.n_assigned = 0
        self.n_noise = 0
        self.n_model_refreshes = 0
        self.n_refits = 0
        self.n_phase_changes = 0
        self.n_drift_events = 0
        self.n_checkpoints = 0
        self.finalized = False
        self._started = False
        self._fit_attempt_at = self.config.warmup_bursts

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def process_text(self, text: str) -> int:
        """Feed a chunk of trace text; returns records consumed."""
        if not self._started:
            publish("stream_started", label="watch")
            self._started = True
        before = self.n_records
        for record in self.parser.feed(text):
            self.n_records += 1
            for burst in self.assembler.feed(record):
                self._ingest_burst(burst)
            if self.n_records % self.config.progress_every_records == 0:
                self._publish_progress()
        return self.n_records - before

    def _ingest_burst(self, burst: ComputationBurst) -> None:
        self.n_bursts += 1
        if self.model is None:
            self.warmup.add(burst, self.rng)
            if self.warmup.n_seen >= self._fit_attempt_at:
                self._try_initial_fit()
            return
        cid = self.model.assign(burst)
        self._reservoir(cid).add(burst, self.rng)
        if cid == NOISE:
            self.n_noise += 1
            if self.drift.push(True):
                self._drift_refresh()
            return
        self.n_assigned += 1
        self.drift.push(False)
        state = self.clusters.setdefault(cid, _ClusterState())
        state.n_assigned += 1
        state.n_since_refit += 1
        if state.n_since_refit >= self.config.refit_every:
            self._refit_cluster(cid)

    def _reservoir(self, cid: int) -> ClusterReservoir:
        reservoir = self.reservoirs.get(cid)
        if reservoir is None:
            reservoir = self.reservoirs[cid] = ClusterReservoir(
                capacity=self.config.reservoir_capacity,
                max_samples_per_burst=self.config.max_samples_per_burst,
            )
        return reservoir

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def _try_initial_fit(self) -> None:
        # Re-attempt on a growing schedule so a warmup set that cannot
        # cluster yet (all-identical bursts, missing pivot) does not pay
        # a DBSCAN per burst forever.
        self._fit_attempt_at = self.warmup.n_seen + max(
            8, self.config.warmup_bursts // 4
        )
        model, labels = OnlineClusterModel.fit(
            self.warmup.items,
            min_pts=self.config.analyzer.min_pts,
            assign_factor=self.config.assign_factor,
        )
        if model is None:
            return
        self.model = model
        for burst, label in zip(self.warmup.items, labels):
            cid = int(label)
            self._reservoir(cid).add(burst, self.rng)
            if cid == NOISE:
                self.n_noise += 1
            else:
                self.n_assigned += 1
                self.clusters.setdefault(cid, _ClusterState()).n_assigned += 1
        self.warmup.items = []
        self.n_model_refreshes += 1
        self._publish_model_refreshed(reason="warmup")

    def _drift_refresh(self) -> None:
        """Re-cluster over the bounded reservoir contents (O(reservoir))."""
        self.n_drift_events += 1
        publish(
            "stream_drift",
            label="watch",
            noise_fraction=round(self.drift.noise_fraction, 4),
            window=self.config.drift_window,
        )
        self.drift.reset()
        pool: List[ComputationBurst] = []
        for reservoir in self.reservoirs.values():
            pool.extend(reservoir.items)
        model, labels = OnlineClusterModel.fit(
            pool,
            min_pts=self.config.analyzer.min_pts,
            assign_factor=self.config.assign_factor,
        )
        if model is None:
            return  # keep the old model; the window restarts from empty
        self.model = model
        # Re-seed reservoirs under the new labeling; per-cluster refit
        # bookkeeping restarts because cluster ids are not stable across
        # refreshes (run totals live on the engine, not the clusters).
        self.reservoirs = {}
        self.clusters = {}
        for burst, label in zip(pool, labels):
            cid = int(label)
            self._reservoir(cid).add(burst, self.rng)
            if cid != NOISE:
                self.clusters.setdefault(cid, _ClusterState()).n_assigned += 1
        self.n_model_refreshes += 1
        self._publish_model_refreshed(reason="drift")

    def _publish_model_refreshed(self, reason: str) -> None:
        assert self.model is not None
        publish(
            "stream_model_refreshed",
            label="watch",
            reason=reason,
            n_clusters=self.model.n_clusters,
            eps=round(self.model.eps, 6),
            n_fitted=self.model.n_fitted,
            used_fallback_eps=self.model.used_fallback_eps,
        )
        gauge("stream.live.clusters").set(self.model.n_clusters)

    # ------------------------------------------------------------------
    # periodic refit
    # ------------------------------------------------------------------
    def _refit_cluster(self, cid: int) -> None:
        # Live refits run the batch detect_phases under cfg.pwlr, so they
        # inherit AnalyzerConfig.pwlr.search_kernel: long watches over
        # growing reservoirs get the n-independent moments search for
        # free (under "auto", once the folded series is large enough).
        state = self.clusters[cid]
        state.n_since_refit = 0
        bursts = self.reservoirs[cid].items
        cfg = self.config.analyzer
        try:
            instances = select_instances(
                BurstSet(list(bursts)),
                np.full(len(bursts), cid),
                cid,
                prune_outliers=cfg.prune_outliers,
                iqr_factor=cfg.iqr_factor,
                min_instances=cfg.min_instances,
            )
            counters = list(cfg.counters) if cfg.counters else sorted(
                {name for b in bursts for name in b.end_counters}
            )
            if cfg.pivot not in counters:
                counters.append(cfg.pivot)
            folded = fold_cluster(
                instances,
                counters,
                min_points=cfg.min_folded_points,
                required=[cfg.pivot],
            )
            phases = detect_phases(
                folded,
                cluster_id=cid,
                pivot=cfg.pivot,
                config=cfg.pwlr,
                allow_fallback=cfg.degraded_mode,
            )
        except (FoldingError, FittingError, PhaseError):
            state.n_refit_failures += 1
            return
        state.n_refits += 1
        self.n_refits += 1
        n_phases = len(phases)
        slopes = phases.pivot_model.slopes
        mean_slope = float(np.mean(np.abs(slopes))) if slopes.size else 0.0
        if state.n_phases is not None and n_phases != state.n_phases:
            self.n_phase_changes += 1
            publish(
                "stream_phase_change",
                label=f"cluster-{cid}",
                cluster=cid,
                n_phases_before=state.n_phases,
                n_phases_after=n_phases,
                n_instances=len(instances),
            )
        elif state.mean_slope is not None and state.mean_slope > 0 and mean_slope > 0:
            ratio = max(mean_slope / state.mean_slope, state.mean_slope / mean_slope)
            if ratio > self.config.slope_shift_factor:
                self.n_drift_events += 1
                publish(
                    "stream_drift",
                    label=f"cluster-{cid}",
                    cluster=cid,
                    slope_ratio=round(ratio, 4),
                    threshold=self.config.slope_shift_factor,
                )
        state.n_phases = n_phases
        state.mean_slope = mean_slope
        gauge(f"stream.live.phases.cluster{cid}").set(n_phases)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _publish_progress(self) -> None:
        gauge("stream.live.records").set(self.n_records)
        gauge("stream.live.bursts").set(self.n_bursts)
        gauge("stream.live.noise_fraction").set(
            round(self.drift.noise_fraction, 4)
        )
        gauge("stream.live.retained_bursts").set(self.n_retained_bursts)
        gauge("stream.live.pending_bursts").set(self.assembler.n_pending)
        publish(
            "stream_progress",
            label="watch",
            n_records=self.n_records,
            n_bursts=self.n_bursts,
            n_assigned=self.n_assigned,
            n_noise=self.n_noise,
            n_clusters=0 if self.model is None else self.model.n_clusters,
            n_dropped_lines=self.parser.report.n_lines_dropped,
        )

    @property
    def n_retained_bursts(self) -> int:
        """Bursts currently held across warmup + all reservoirs."""
        return self.warmup.n_retained + sum(
            r.n_retained for r in self.reservoirs.values()
        )

    def report(self) -> StreamReport:
        """Snapshot of the run so far."""
        return StreamReport(
            n_records=self.n_records,
            n_dropped_lines=self.parser.report.n_lines_dropped,
            n_bursts=self.n_bursts,
            n_assigned=self.n_assigned,
            n_noise=self.n_noise,
            n_clusters=0 if self.model is None else self.model.n_clusters,
            n_model_refreshes=self.n_model_refreshes,
            n_refits=self.n_refits,
            n_phase_changes=self.n_phase_changes,
            n_drift_events=self.n_drift_events,
            n_checkpoints=self.n_checkpoints,
            n_forced_emissions=self.assembler.forced_emissions,
            n_late_samples=self.assembler.late_samples,
            n_retained_bursts=self.n_retained_bursts,
            model_ready=self.model is not None,
            finalized=self.finalized,
        )

    # ------------------------------------------------------------------
    # follow loop
    # ------------------------------------------------------------------
    def follow(
        self,
        source: TraceTailSource,
        poll_interval: float = 0.2,
        idle_timeout: Optional[float] = None,
        max_seconds: Optional[float] = None,
        on_checkpoint: Optional[Callable[["StreamEngine", TraceTailSource], None]] = None,
        checkpoint_every: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> str:
        """Follow ``source`` until a stop condition; returns the reason.

        Reasons: ``"eof"`` (a stdin source closed), ``"idle"`` (no new
        bytes for ``idle_timeout`` seconds), ``"max_seconds"``, or
        ``"stopped"`` (``should_stop`` returned True — e.g. SIGINT).
        ``on_checkpoint`` fires every ``checkpoint_every`` seconds of
        wall time, between chunks (never mid-record).
        """
        start = time.monotonic()
        last_data = start
        last_checkpoint = start
        while True:
            got = 0
            for chunk in source.drain():
                got += len(chunk)
                self.process_text(chunk)
                if should_stop is not None and should_stop():
                    return "stopped"
            now = time.monotonic()
            if got:
                last_data = now
                # keep the live gauges fresh for mid-stream scrapes even
                # when the trace is smaller than progress_every_records
                self._publish_progress()
            if should_stop is not None and should_stop():
                return "stopped"
            if source.at_eof:
                return "eof"
            if (
                on_checkpoint is not None
                and checkpoint_every is not None
                and now - last_checkpoint >= checkpoint_every
            ):
                on_checkpoint(self, source)
                last_checkpoint = now
            if idle_timeout is not None and now - last_data >= idle_timeout:
                return "idle"
            if max_seconds is not None and now - start >= max_seconds:
                return "max_seconds"
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finalize(self, source: TraceTailSource) -> AnalysisResult:
        """Exact end-of-stream analysis of the completed trace.

        Flushes the online state (so the live counters are complete),
        then re-reads the whole file through the batch pipeline with
        ``config.analyzer`` — strict or salvage per ``config.salvage``.
        This is what makes the convergence guarantee hold: the result is
        the batch result, not an approximation of it.
        """
        for record in self.parser.finish():
            self.n_records += 1
            for burst in self.assembler.feed(record):
                self._ingest_burst(burst)
        for burst in self.assembler.flush():
            self._ingest_burst(burst)
        path = source.final_path()
        # The re-read runs under a *disabled* observability context: a
        # cold `repro analyze` (no sinks) produces a result with no
        # embedded profile, and live-watch span timestamps must not leak
        # into the result the convergence guarantee is defined over.
        with DISABLED.activate():
            if self.config.salvage:
                trace, salvage = read_trace_salvaged(path)
                result = FoldingAnalyzer(self.config.analyzer).analyze(
                    trace, salvage=salvage
                )
            else:
                trace = read_trace(path)
                result = FoldingAnalyzer(self.config.analyzer).analyze(trace)
        self.finalized = True
        publish(
            "stream_finalized",
            label="watch",
            n_records=self.n_records,
            n_bursts=self.n_bursts,
            n_clusters=len(result.clusters),
        )
        return result

    # ------------------------------------------------------------------
    # checkpoint state
    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the complete engine state."""
        return {
            "config": self.config.to_dict(),
            "parser": self.parser.state_to_dict(),
            "assembler": self.assembler.state_to_dict(),
            "model": None if self.model is None else self.model.state_to_dict(),
            "rng": self.rng.bit_generator.state,
            "warmup": _reservoir_to_dict(self.warmup),
            "reservoirs": {
                str(cid): _reservoir_to_dict(r)
                for cid, r in self.reservoirs.items()
            },
            "drift": list(self.drift.outcomes),
            "clusters": {
                str(cid): state.to_dict() for cid, state in self.clusters.items()
            },
            "counters": {
                "n_records": self.n_records,
                "n_bursts": self.n_bursts,
                "n_assigned": self.n_assigned,
                "n_noise": self.n_noise,
                "n_model_refreshes": self.n_model_refreshes,
                "n_refits": self.n_refits,
                "n_phase_changes": self.n_phase_changes,
                "n_drift_events": self.n_drift_events,
                "n_checkpoints": self.n_checkpoints,
                "fit_attempt_at": self._fit_attempt_at,
                "started": self._started,
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StreamEngine":
        """Rebuild an engine from :meth:`state_to_dict` output."""
        engine = cls(StreamConfig.from_dict(state["config"]))  # type: ignore[arg-type]
        engine.parser = StreamParser.from_state(state["parser"])  # type: ignore[arg-type]
        engine.assembler = IncrementalBurstAssembler.from_state(state["assembler"])  # type: ignore[arg-type]
        if state["model"] is not None:
            engine.model = OnlineClusterModel.from_state(state["model"])  # type: ignore[arg-type]
        engine.rng.bit_generator.state = state["rng"]
        engine.warmup = _reservoir_from_dict(state["warmup"])  # type: ignore[arg-type]
        engine.reservoirs = {
            int(cid): _reservoir_from_dict(data)
            for cid, data in state["reservoirs"].items()  # type: ignore[union-attr]
        }
        for outcome in state["drift"]:  # type: ignore[union-attr]
            engine.drift.outcomes.append(bool(outcome))
        engine.clusters = {
            int(cid): _ClusterState.from_dict(data)
            for cid, data in state["clusters"].items()  # type: ignore[union-attr]
        }
        counters = state["counters"]
        engine.n_records = int(counters["n_records"])  # type: ignore[index]
        engine.n_bursts = int(counters["n_bursts"])  # type: ignore[index]
        engine.n_assigned = int(counters["n_assigned"])  # type: ignore[index]
        engine.n_noise = int(counters["n_noise"])  # type: ignore[index]
        engine.n_model_refreshes = int(counters["n_model_refreshes"])  # type: ignore[index]
        engine.n_refits = int(counters["n_refits"])  # type: ignore[index]
        engine.n_phase_changes = int(counters["n_phase_changes"])  # type: ignore[index]
        engine.n_drift_events = int(counters["n_drift_events"])  # type: ignore[index]
        engine.n_checkpoints = int(counters["n_checkpoints"])  # type: ignore[index]
        engine._fit_attempt_at = int(counters["fit_attempt_at"])  # type: ignore[index]
        engine._started = bool(counters["started"])  # type: ignore[index]
        return engine


def _reservoir_to_dict(reservoir: ClusterReservoir) -> Dict[str, object]:
    return {
        "capacity": reservoir.capacity,
        "max_samples_per_burst": reservoir.max_samples_per_burst,
        "n_seen": reservoir.n_seen,
        "items": [burst_to_dict(b) for b in reservoir.items],
    }


def _reservoir_from_dict(data: Dict[str, object]) -> ClusterReservoir:
    reservoir = ClusterReservoir(
        capacity=int(data["capacity"]),
        max_samples_per_burst=int(data["max_samples_per_burst"]),
    )
    reservoir.n_seen = int(data["n_seen"])
    reservoir.items = [burst_from_dict(b) for b in data["items"]]  # type: ignore[union-attr]
    return reservoir
