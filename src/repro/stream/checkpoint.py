"""Crash-safe checkpoint/resume for the streaming engine.

A checkpoint is one JSON artifact (format ``repro-stream-ckpt/1``)
holding the complete serialized :class:`~repro.stream.engine.StreamEngine`
state plus the *consumption cursor*: the byte offset the engine has
consumed and the SHA-256 of exactly that prefix.  It is written with the
store's atomic-artifact discipline — temp file in the destination
directory, flush + fsync, then :func:`os.replace` — so a crash mid-write
leaves either the previous checkpoint or none, never a torn one.

Resume (:func:`resume_engine`) refuses two classes of stale checkpoint
loudly rather than silently diverging:

* **config mismatch** — the checkpoint embeds the full
  :class:`~repro.stream.engine.StreamConfig`; resuming with a different
  one raises :class:`~repro.errors.StreamError` (the online state is
  only meaningful under the config that produced it);
* **prefix mismatch** — the followed file is re-hashed up to the saved
  offset (:meth:`~repro.stream.source.TraceTailSource.seek_to`); a file
  that shrank or was rewritten in place fails the digest check.

An embedded digest over the payload additionally rejects truncated or
hand-edited checkpoint files.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional, Tuple

from repro.errors import StreamError
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.source import TraceTailSource

__all__ = ["CHECKPOINT_FORMAT", "save_checkpoint", "load_checkpoint", "resume_engine"]

CHECKPOINT_FORMAT = "repro-stream-ckpt/1"


def _canonical(payload: Dict[str, object]) -> str:
    # sort_keys + tight separators: one canonical byte sequence per
    # payload, so the digest is reproducible across writes.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def save_checkpoint(
    path: str, engine: StreamEngine, source: TraceTailSource
) -> str:
    """Atomically write a checkpoint of ``engine`` following ``source``.

    Returns the payload digest.  Publishes nothing itself — the caller
    owns the ``stream_checkpoint`` event so it can attach context.
    """
    payload: Dict[str, object] = {
        "offset": source.offset,
        "prefix_sha256": source.prefix_digest(),
        "source_path": os.path.abspath(source.final_path()),
        "engine": engine.state_to_dict(),
    }
    text = _canonical(payload)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    document = {
        "format": CHECKPOINT_FORMAT,
        "digest": digest,
        "payload": payload,
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return digest


def load_checkpoint(path: str) -> Dict[str, object]:
    """Read and verify a checkpoint file; returns the payload dict.

    Raises :class:`~repro.errors.StreamError` on a missing file, a wrong
    format marker, or a payload whose digest does not match — a torn or
    edited checkpoint must never silently seed a resumed stream.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise StreamError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StreamError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise StreamError(
            f"checkpoint {path}: expected format {CHECKPOINT_FORMAT!r}, "
            f"got {document.get('format') if isinstance(document, dict) else type(document).__name__!r}"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise StreamError(f"checkpoint {path}: missing payload")
    digest = hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()
    if digest != document.get("digest"):
        raise StreamError(
            f"checkpoint {path}: payload digest mismatch "
            f"(file corrupt or hand-edited)"
        )
    return payload


def resume_engine(
    checkpoint_path: str,
    trace_path: str,
    expected_config: Optional[StreamConfig] = None,
) -> Tuple[StreamEngine, TraceTailSource]:
    """Rebuild an engine + positioned source from a checkpoint.

    ``trace_path`` is the file to keep following; it must carry the same
    byte prefix the checkpoint consumed (verified by re-hash).  When the
    caller knows which configuration it wants (``expected_config``), a
    checkpoint taken under a different one is refused — online state is
    only meaningful under the config that produced it.  The returned
    source is positioned at the saved offset, ready for
    :meth:`~repro.stream.engine.StreamEngine.follow`.
    """
    payload = load_checkpoint(checkpoint_path)
    engine = StreamEngine.from_state(payload["engine"])  # type: ignore[arg-type]
    if expected_config is not None and expected_config.to_dict() != engine.config.to_dict():
        raise StreamError(
            f"checkpoint {checkpoint_path} was taken under a different "
            f"stream configuration; refusing to resume (re-run without "
            f"--resume, or with matching options)"
        )
    source = TraceTailSource(trace_path)
    source.seek_to(int(payload["offset"]), str(payload["prefix_sha256"]))
    return engine, source
