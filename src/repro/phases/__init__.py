"""Phase construction, source mapping and scoring.

:mod:`repro.phases.detect` turns fitted models into :class:`Phase` objects
with absolute durations, per-counter rates and derived metrics;
:mod:`repro.phases.mapping` correlates each phase with the application's
source code through the folded call stacks; :mod:`repro.phases.compare`
scores detected phase boundaries against ground truth (benchmarks only).
"""

from repro.phases.detect import Phase, PhaseSet, detect_phases
from repro.phases.mapping import PhaseSourceAttribution, map_phases_to_source
from repro.phases.compare import BoundaryScore, match_boundaries

__all__ = [
    "Phase",
    "PhaseSet",
    "detect_phases",
    "PhaseSourceAttribution",
    "map_phases_to_source",
    "BoundaryScore",
    "match_boundaries",
]
