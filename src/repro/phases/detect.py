"""Phase detection: fitted segments → phases with absolute metrics.

The pivot counter (instructions by default) determines the breakpoints —
one regression, searched once; every other counter's slopes are then
re-estimated *at those shared breakpoints*, so all metrics describe the
same phase boundaries.  De-normalizing a slope gives the phase's absolute
event rate::

    rate_c(phase) = slope_c(phase) * mean_total_c / mean_duration

from which the derived metrics (MIPS, IPC, MPKI, ...) follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.counters.derived import compute_metrics
from repro.errors import FittingError, PhaseError
from repro.fitting.kernel_smooth import KernelSmoother, smoother_breakpoints
from repro.fitting.pwlr import (
    PiecewiseLinearModel,
    PWLRConfig,
    fit_pwlr,
    refit_slopes,
    refit_slopes_many,
)
from repro.folding.fold import FoldedCounter
from repro.observability.context import counter as _metric_counter
from repro.observability.context import span as _span
from repro.resilience.diagnostics import Diagnostics

__all__ = ["Phase", "PhaseSet", "detect_phases"]

#: Default pivot counter whose regression defines the breakpoints.
DEFAULT_PIVOT = "PAPI_TOT_INS"

#: Counters (besides the pivot) whose regressions also contribute
#: breakpoints when present.  Two phases can retire instructions at the
#: same rate yet differ completely in cache or FP behaviour; running the
#: breakpoint search on these counters too — exactly as the paper fits
#: each counter's folded samples — recovers boundaries invisible to the
#: pivot alone.  Cycles are pointless here: on normalized time their
#: cumulative curve is the identity.
DEFAULT_BREAKPOINT_COUNTERS = (
    "PAPI_L3_TCM",
    "PAPI_FP_OPS",
    "PAPI_BR_MSP",
    "PAPI_VEC_INS",
    "PAPI_L1_DCM",
)


@dataclass(frozen=True)
class Phase:
    """One detected phase of a computation region.

    ``x_start``/``x_end`` are normalized; ``t_start_s``/``duration_s`` are
    de-normalized with the cluster's mean instance duration.  ``rates``
    maps counters to absolute events/second; ``metrics`` holds the derived
    metrics computed from those rates.
    """

    index: int
    x_start: float
    x_end: float
    t_start_s: float
    duration_s: float
    rates: Mapping[str, float]
    metrics: Mapping[str, float]

    def __post_init__(self) -> None:
        if not 0.0 <= self.x_start < self.x_end <= 1.0 + 1e-9:
            raise PhaseError(
                f"phase {self.index}: invalid normalized span "
                f"[{self.x_start}, {self.x_end}]"
            )
        if self.duration_s <= 0:
            raise PhaseError(f"phase {self.index}: non-positive duration")

    @property
    def x_span(self) -> float:
        """Normalized width of the phase."""
        return self.x_end - self.x_start

    def metric(self, name: str) -> float:
        """Derived metric by name; raises with the available set listed."""
        try:
            return self.metrics[name]
        except KeyError:
            raise PhaseError(
                f"phase {self.index} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None


@dataclass
class PhaseSet:
    """All phases of one cluster plus the models behind them."""

    cluster_id: int
    phases: List[Phase]
    pivot_counter: str
    pivot_model: PiecewiseLinearModel
    counter_models: Dict[str, PiecewiseLinearModel]
    mean_duration: float
    n_instances: int

    def __post_init__(self) -> None:
        if not self.phases:
            raise PhaseError(f"cluster {self.cluster_id}: empty phase set")

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)

    @property
    def boundaries(self) -> np.ndarray:
        """Interior normalized phase boundaries."""
        return np.array([p.x_end for p in self.phases[:-1]])

    def dominant_phase(self, by: str = "duration_s") -> Phase:
        """Phase with the largest ``by`` attribute (default: longest)."""
        return max(self.phases, key=lambda p: getattr(p, by))

    def weighted_metric(self, name: str) -> float:
        """Duration-weighted mean of a metric across phases."""
        weights = np.array([p.duration_s for p in self.phases])
        values = np.array([p.metric(name) for p in self.phases])
        return float(np.dot(values, weights) / weights.sum())


def _smoother_fallback_breaks(fc: FoldedCounter) -> List[float]:
    """Kernel-smoother baseline breakpoints for a counter whose PWLR fit
    failed — the prior-work estimator never needs an optimizer, so it
    survives data the breakpoint search cannot digest."""
    try:
        smoother = KernelSmoother.with_plugin_bandwidth(fc.x, fc.y)
        return [float(b) for b in smoother_breakpoints(smoother)]
    except FittingError:
        return []


def detect_phases(
    folded: Mapping[str, FoldedCounter],
    cluster_id: int = 0,
    pivot: str = DEFAULT_PIVOT,
    config: Optional[PWLRConfig] = None,
    breakpoint_counters: Optional[Sequence[str]] = None,
    diagnostics: Optional[Diagnostics] = None,
    allow_fallback: bool = False,
) -> PhaseSet:
    """Detect phases from folded counters.

    ``folded`` maps counter names to folded sample sets of one cluster
    (same instances).  The pivot counter must be present.  Breakpoints are
    searched on the pivot *and* on every ``breakpoint_counters`` entry
    present in ``folded`` (defaults to :data:`DEFAULT_BREAKPOINT_COUNTERS`);
    the union of the discovered boundaries — deduplicated within the
    configured minimum separation and pruned of boundaries insignificant
    for *every* counter — defines the phases.  Per-counter slopes are then
    re-estimated at the shared boundaries.

    With ``allow_fallback=True`` (degraded mode) a failed PWLR breakpoint
    search falls back to the kernel-smoother baseline's breakpoints, and a
    failed slope refit drops that counter from the phase metrics instead
    of aborting the cluster — each event recorded in ``diagnostics``.  The
    pivot's slope refit has no substitute: its failure still raises.
    """
    if pivot not in folded:
        raise PhaseError(
            f"pivot counter {pivot!r} missing from folded set "
            f"({sorted(folded)})"
        )
    cfg = config or PWLRConfig()
    diag = diagnostics if diagnostics is not None else Diagnostics()
    with _span(
        "detect_phases", cluster_id=cluster_id, n_counters=len(folded)
    ):
        phase_set = _detect_phases_impl(
            folded, cluster_id, pivot, cfg, breakpoint_counters, diag,
            allow_fallback,
        )
    _metric_counter("phases.detected").inc(len(phase_set))
    return phase_set


def _detect_phases_impl(
    folded: Mapping[str, FoldedCounter],
    cluster_id: int,
    pivot: str,
    cfg: PWLRConfig,
    breakpoint_counters: Optional[Sequence[str]],
    diag: Diagnostics,
    allow_fallback: bool,
) -> PhaseSet:
    search_counters = [pivot] + [
        c
        for c in (
            DEFAULT_BREAKPOINT_COUNTERS
            if breakpoint_counters is None
            else breakpoint_counters
        )
        if c in folded and c != pivot
    ]

    # 1. independent breakpoint search per counter
    candidate_breaks: List[float] = []
    for counter in search_counters:
        fc = folded[counter]
        try:
            model = fit_pwlr(fc.x, fc.y, config=cfg)
            candidate_breaks.extend(float(b) for b in model.breakpoints)
        except FittingError as exc:
            if not allow_fallback:
                raise
            fallback_breaks = _smoother_fallback_breaks(fc)
            diag.degraded(
                "fitting",
                f"PWLR breakpoint search failed for {counter}; "
                f"kernel-smoother baseline supplied "
                f"{len(fallback_breaks)} breakpoint(s)",
                cluster_id=cluster_id,
                counter=counter,
                error=str(exc),
            )
            candidate_breaks.extend(fallback_breaks)

    # 2. dedupe co-located boundaries from different counters (they
    #    describe the same transition, jittered by the boundary blur)
    dedupe_window = max(cfg.min_separation, cfg.min_phase_span)
    merged = _dedupe_boundaries(candidate_breaks, dedupe_window)

    # 3. refit every counter at the merged boundaries and prune boundaries
    #    insignificant for every counter
    refit_failed: set = set()

    def refit_one_by_one(
        counters: Sequence[str],
        breaks: Sequence[float],
        models: Dict[str, PiecewiseLinearModel],
    ) -> None:
        for counter in counters:
            fc = folded[counter]
            try:
                models[counter] = refit_slopes(
                    fc.x,
                    fc.y,
                    _shell_model(breaks),
                    anchor=cfg.anchor,
                    anchor_weight=cfg.anchor_weight,
                    monotone=cfg.monotone,
                )
            except FittingError as exc:
                # The pivot's slopes ARE the phase definition — no refit,
                # no phases.  Any other counter just loses its metrics.
                if not allow_fallback or counter == pivot:
                    raise
                refit_failed.add(counter)
                diag.warning(
                    "fitting",
                    f"slope refit failed for {counter}; "
                    f"counter dropped from phase metrics",
                    cluster_id=cluster_id,
                    counter=counter,
                    error=str(exc),
                )

    def refit_all(breaks: Sequence[float]) -> Dict[str, PiecewiseLinearModel]:
        # Counters folded from the same instances share one abscissa, so
        # their refits share one design matrix: batch each group through
        # refit_slopes_many (bit-identical to the per-counter path) and
        # keep the per-counter loop as the fallback that preserves the
        # drop-one-counter failure semantics.
        groups: Dict[bytes, List[str]] = {}
        for counter, fc in folded.items():
            if counter in refit_failed:
                continue
            groups.setdefault(fc.x.tobytes(), []).append(counter)
        models: Dict[str, PiecewiseLinearModel] = {}
        for counters in groups.values():
            try:
                fitted = refit_slopes_many(
                    folded[counters[0]].x,
                    [folded[c].y for c in counters],
                    _shell_model(breaks),
                    anchor=cfg.anchor,
                    anchor_weight=cfg.anchor_weight,
                    monotone=cfg.monotone,
                )
            except FittingError:
                refit_one_by_one(counters, breaks, models)
            else:
                for counter, model in zip(counters, fitted):
                    models[counter] = model
        return {c: models[c] for c in folded if c in models}

    counter_models = refit_all(merged)
    boundaries = list(merged)
    if boundaries and cfg.merge_slope_tol > 0:
        kept = _significant_boundaries(
            boundaries,
            [counter_models[c] for c in search_counters if c in counter_models],
            cfg.merge_slope_tol,
        )
        if len(kept) < len(boundaries):
            boundaries = kept
            counter_models = refit_all(boundaries)

    # 4. merge boundary-blur slivers: a phase narrower than min_phase_span
    #    is an artifact of the smeared knee around a true transition —
    #    drop its weaker boundary and refit until no sliver remains.
    while boundaries and cfg.min_phase_span > 0:
        spans = np.diff(np.concatenate([[0.0], boundaries, [1.0]]))
        narrow = np.flatnonzero(spans < cfg.min_phase_span)
        if narrow.size == 0:
            break
        segment = int(narrow[np.argmin(spans[narrow])])
        adjacent = [b for b in (segment - 1, segment) if 0 <= b < len(boundaries)]
        search_models = [
            counter_models[c] for c in search_counters if c in counter_models
        ]
        weakest = min(
            adjacent, key=lambda b: _boundary_strength(b, search_models)
        )
        boundaries.pop(weakest)
        counter_models = refit_all(boundaries)

    pivot_model = counter_models[pivot]
    pivot_folded = folded[pivot]

    mean_duration = pivot_folded.mean_duration
    phases: List[Phase] = []
    knots = pivot_model.knots
    for i in range(pivot_model.n_segments):
        x0, x1 = float(knots[i]), float(knots[i + 1])
        rates: Dict[str, float] = {}
        for counter, model in counter_models.items():
            fc = folded[counter]
            mean_rate = fc.mean_total / fc.mean_duration
            rates[counter] = float(model.slopes[i]) * mean_rate
        metrics = compute_metrics(rates)
        phases.append(
            Phase(
                index=i,
                x_start=x0,
                x_end=x1,
                t_start_s=x0 * mean_duration,
                duration_s=(x1 - x0) * mean_duration,
                rates=rates,
                metrics=metrics,
            )
        )
    return PhaseSet(
        cluster_id=cluster_id,
        phases=phases,
        pivot_counter=pivot,
        pivot_model=pivot_model,
        counter_models=counter_models,
        mean_duration=mean_duration,
        n_instances=pivot_folded.n_instances,
    )


def _shell_model(breakpoints: Sequence[float]) -> PiecewiseLinearModel:
    """Placeholder model carrying only breakpoints (for refit_slopes)."""
    bp = np.sort(np.asarray(list(breakpoints), dtype=float))
    return PiecewiseLinearModel(
        breakpoints=bp,
        slopes=np.ones(bp.size + 1),
        intercept=0.0,
        sse=0.0,
        n_points=0,
    )


def _dedupe_boundaries(boundaries: Sequence[float], min_separation: float) -> List[float]:
    """Average boundaries from different counters that fall within
    ``min_separation`` of each other (they describe the same transition)."""
    if not boundaries:
        return []
    ordered = sorted(float(b) for b in boundaries)
    groups: List[List[float]] = [[ordered[0]]]
    for b in ordered[1:]:
        if b - groups[-1][-1] < min_separation:
            groups[-1].append(b)
        else:
            groups.append([b])
    return [float(np.mean(group)) for group in groups]


def _boundary_strength(
    index: int, models: Sequence[PiecewiseLinearModel]
) -> float:
    """Strength of boundary ``index``: the largest relative slope change
    it induces across the given counter models."""
    strength = 0.0
    for model in models:
        slopes = model.slopes
        scale = float(np.mean(np.abs(slopes)))
        if scale == 0.0:
            continue
        strength = max(
            strength, abs(float(slopes[index + 1] - slopes[index])) / scale
        )
    return strength


def _significant_boundaries(
    boundaries: Sequence[float],
    models: Sequence[PiecewiseLinearModel],
    tol: float,
) -> List[float]:
    """Keep boundaries where *some* counter changes slope appreciably.

    A boundary is significant for a counter when the slope change across
    it exceeds ``tol`` times that counter's mean absolute slope.
    """
    return [
        float(boundary)
        for i, boundary in enumerate(boundaries)
        if _boundary_strength(i, models) >= tol
    ]
