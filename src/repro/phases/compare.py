"""Scoring detected phase boundaries against ground truth.

Used only by tests/benchmarks (TAB-1, FIG-4): greedy one-to-one matching of
detected to true boundaries within a normalized-time tolerance, yielding
precision/recall/F1 and the mean absolute position error over matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import PhaseError

__all__ = ["BoundaryScore", "match_boundaries"]


@dataclass(frozen=True)
class BoundaryScore:
    """Boundary-detection outcome."""

    n_true: int
    n_detected: int
    n_matched: int
    mean_abs_error: float
    tolerance: float

    @property
    def precision(self) -> float:
        """Matched / detected (1.0 when nothing was detected *and* nothing
        was there to detect)."""
        if self.n_detected == 0:
            return 1.0 if self.n_true == 0 else 0.0
        return self.n_matched / self.n_detected

    @property
    def recall(self) -> float:
        """Matched / true."""
        if self.n_true == 0:
            return 1.0
        return self.n_matched / self.n_true

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"err={self.mean_abs_error:.4f} (tol={self.tolerance})"
        )


def match_boundaries(
    detected: Sequence[float],
    truth: Sequence[float],
    tolerance: float = 0.02,
) -> BoundaryScore:
    """Greedy nearest-first matching of boundary positions.

    Candidate pairs within ``tolerance`` are taken in order of increasing
    distance, each boundary used at most once — the standard assignment
    heuristic for changepoint evaluation.
    """
    if tolerance <= 0:
        raise PhaseError(f"tolerance must be positive, got {tolerance}")
    det = np.sort(np.asarray(detected, dtype=float))
    tru = np.sort(np.asarray(truth, dtype=float))

    pairs: List[Tuple[float, int, int]] = []
    for i, d in enumerate(det):
        for j, t in enumerate(tru):
            gap = abs(d - t)
            if gap <= tolerance:
                pairs.append((gap, i, j))
    pairs.sort()

    used_det = set()
    used_tru = set()
    errors: List[float] = []
    for gap, i, j in pairs:
        if i in used_det or j in used_tru:
            continue
        used_det.add(i)
        used_tru.add(j)
        errors.append(gap)

    return BoundaryScore(
        n_true=int(tru.size),
        n_detected=int(det.size),
        n_matched=len(errors),
        mean_abs_error=float(np.mean(errors)) if errors else float("nan"),
        tolerance=float(tolerance),
    )
