"""Scoring detected phase boundaries against ground truth.

Used by tests/benchmarks (TAB-1, FIG-4) and the verification harness:
optimal one-to-one matching of detected to true boundaries within a
normalized-time tolerance, yielding precision/recall/F1 and the mean
absolute position error over matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import PhaseError

__all__ = ["BoundaryScore", "match_boundaries"]


@dataclass(frozen=True)
class BoundaryScore:
    """Boundary-detection outcome.

    ``mean_abs_error`` is defined **only over matched pairs**: when
    ``n_matched == 0`` there is no error distribution to average and the
    value is NaN by contract (never 0.0, which would read as a perfect
    score).  Consumers aggregating scores must guard on ``n_matched``
    before using it — see ``bench_tab1_phase_detection`` for the
    canonical guard.
    """

    n_true: int
    n_detected: int
    n_matched: int
    mean_abs_error: float
    tolerance: float

    @property
    def precision(self) -> float:
        """Matched / detected (1.0 when nothing was detected *and* nothing
        was there to detect)."""
        if self.n_detected == 0:
            return 1.0 if self.n_true == 0 else 0.0
        return self.n_matched / self.n_detected

    @property
    def recall(self) -> float:
        """Matched / true."""
        if self.n_true == 0:
            return 1.0
        return self.n_matched / self.n_true

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"err={self.mean_abs_error:.4f} (tol={self.tolerance})"
        )


def _better(a: Tuple[int, float], b: Tuple[int, float]) -> Tuple[int, float]:
    """The preferable ``(n_matched, total_error)`` outcome: more matches
    first, smaller total error on ties."""
    if a[0] != b[0]:
        return a if a[0] > b[0] else b
    return a if a[1] <= b[1] else b


def match_boundaries(
    detected: Sequence[float],
    truth: Sequence[float],
    tolerance: float = 0.02,
) -> BoundaryScore:
    """Optimal one-to-one matching of boundary positions.

    Candidate pairs within ``tolerance`` are assigned so that the number
    of matches is **maximized**, and — among maximum-cardinality
    assignments — the total absolute position error is minimized.

    Greedy heuristics (taking pairs in input order, or even nearest
    pair first) are not equivalent: a detected boundary can claim the
    only true boundary another detection could reach, losing a feasible
    match and mis-scoring F1 (pinned in ``tests/test_phases.py``).  For
    1-D positions an optimal assignment always exists that preserves
    order (uncrossing two matched pairs never increases either gap), so
    a quadratic dynamic program over the two sorted sequences is exact.
    """
    if tolerance <= 0:
        raise PhaseError(f"tolerance must be positive, got {tolerance}")
    det = np.sort(np.asarray(detected, dtype=float))
    tru = np.sort(np.asarray(truth, dtype=float))
    n, m = int(det.size), int(tru.size)

    # best[i][j]: optimal (n_matched, total_error) over det[:i] vs tru[:j].
    best = [[(0, 0.0)] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        row = best[i]
        prev = best[i - 1]
        for j in range(1, m + 1):
            outcome = _better(prev[j], row[j - 1])
            gap = abs(float(det[i - 1]) - float(tru[j - 1]))
            if gap <= tolerance:
                matched, total = prev[j - 1]
                outcome = _better(outcome, (matched + 1, total + gap))
            row[j] = outcome
    n_matched, total_error = best[n][m]

    return BoundaryScore(
        n_true=m,
        n_detected=n,
        n_matched=n_matched,
        mean_abs_error=(total_error / n_matched) if n_matched else float("nan"),
        tolerance=float(tolerance),
    )
