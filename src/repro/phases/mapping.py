"""Phase → source-code correlation.

Intersects each detected phase's normalized span with the folded call-stack
samples: the routines and source lines observed inside the span, their
occurrence shares, and the deepest call-path prefix common to all samples.
This is the step that turns "segment [0.31, 0.58] at 950 MIPS" into "the
stencil loop in ``btrop_operator`` (solvers.f90:160)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PhaseError
from repro.folding.callstack import FoldedCallstacks
from repro.observability.context import counter as _metric_counter
from repro.observability.context import span as _span
from repro.phases.detect import Phase, PhaseSet
from repro.trace.records import FrameTriple

__all__ = ["PhaseSourceAttribution", "map_phases_to_source"]


@dataclass(frozen=True)
class PhaseSourceAttribution:
    """Source attribution of one phase.

    ``confidence`` is the dominant leaf routine's occurrence share among
    the phase's samples; ``n_samples`` how many samples supported it.  A
    phase narrower than the sampling coverage can end up with zero samples
    — then everything is empty/None and ``confidence`` is 0 (callers must
    treat such phases as "structure detected, attribution unknown").
    """

    phase_index: int
    dominant_routine: Optional[str]
    confidence: float
    n_samples: int
    routine_shares: Dict[str, float]
    top_lines: Tuple[Tuple[str, int, float], ...]
    common_prefix: Tuple[FrameTriple, ...]

    @property
    def attributed(self) -> bool:
        """Whether any sample supported this phase."""
        return self.n_samples > 0

    def describe(self) -> str:
        """One-line human-readable attribution."""
        if not self.attributed:
            return "unattributed (no samples in span)"
        lines = ", ".join(
            f"{path.rsplit('/', 1)[-1]}:{line} ({share:.0%})"
            for path, line, share in self.top_lines[:2]
        )
        return f"{self.dominant_routine} [{self.confidence:.0%}] {lines}"


def map_phases_to_source(
    phase_set: PhaseSet,
    callstacks: FoldedCallstacks,
    top_k_lines: int = 3,
) -> List[PhaseSourceAttribution]:
    """Attribute every phase of ``phase_set`` through ``callstacks``."""
    if top_k_lines < 1:
        raise PhaseError(f"top_k_lines must be >= 1, got {top_k_lines}")
    out: List[PhaseSourceAttribution] = []
    with _span(
        "map_source", cluster_id=phase_set.cluster_id, n_phases=len(phase_set)
    ):
        for phase in phase_set:
            out.append(_attribute(phase, callstacks, top_k_lines))
    _metric_counter("source.attributions").inc(
        sum(1 for a in out if a.attributed)
    )
    _metric_counter("source.unattributed_phases").inc(
        sum(1 for a in out if not a.attributed)
    )
    return out


def _attribute(
    phase: Phase, callstacks: FoldedCallstacks, top_k_lines: int
) -> PhaseSourceAttribution:
    x0 = max(0.0, phase.x_start)
    x1 = min(1.0, phase.x_end)
    routine_shares = callstacks.routine_shares(x0, x1)
    line_shares = callstacks.line_shares(x0, x1)
    n_samples = callstacks.n_samples_in(x0, x1)
    if not routine_shares:
        return PhaseSourceAttribution(
            phase_index=phase.index,
            dominant_routine=None,
            confidence=0.0,
            n_samples=0,
            routine_shares={},
            top_lines=(),
            common_prefix=(),
        )
    dominant = max(routine_shares, key=routine_shares.get)
    top_lines = tuple(
        (path, line, share)
        for (path, line), share in sorted(
            line_shares.items(), key=lambda kv: -kv[1]
        )[:top_k_lines]
    )
    return PhaseSourceAttribution(
        phase_index=phase.index,
        dominant_routine=dominant,
        confidence=routine_shares[dominant],
        n_samples=n_samples,
        routine_shares=routine_shares,
        top_lines=top_lines,
        common_prefix=callstacks.common_prefix(x0, x1),
    )
