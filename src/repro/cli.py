"""Command-line interface.

Mirrors the real toolchain's workflow split::

    python -m repro apps                          # list built-in applications
    python -m repro trace --app cgpop -o run.rpt  # "run" + trace to a file
    python -m repro stats run.rpt                 # trace health summary
    python -m repro check run.rpt                 # validate a trace file
    python -m repro check run.rpt --salvage       # ...salvaging what it can
    python -m repro analyze run.rpt               # folding analysis + report
    python -m repro analyze - < run.rpt           # any input may be stdin (-)
    python -m repro analyze run.rpt --profile p.json --log-jsonl ev.jsonl
    python -m repro analyze run.rpt --store st/   # read-through result cache
    python -m repro watch run.rpt --json          # follow a growing trace
    python -m repro watch run.rpt --checkpoint c.json --metrics-port 9461
    python -m repro report p.json                 # where-did-the-time-go
    python -m repro demo --app pmemd --optimize   # full methodology + case study
    python -m repro batch traces/ --store st/     # analyze a whole directory
    python -m repro batch traces/ --store st/ --deadline 60 --resume
    python -m repro batch traces/ --store st/ --live --metrics-port 9461
    python -m repro batch traces/ --store st/ --json > report.json
    python -m repro perf history st/              # recorded run history
    python -m repro perf check st/ --gate         # PWLR self-regression gate
    python -m repro store fsck st/ --repair       # integrity scan + repair
    python -m repro query st/                     # list stored results
    python -m repro query st/ 617f477ff543        # re-render one stored report
    python -m repro diff st/ FP_A FP_B            # per-phase rate regressions

Global flags (before the subcommand) control logging: ``-q`` silences the
stage-progress lines long analyses emit by default, ``-v`` shows all
``repro.*`` INFO records, ``-vv`` turns on DEBUG with timestamps.

All commands are deterministic given ``--seed``.  ``check`` exits 0 when
the trace is usable under the selected policy, 1 on a strict-mode format
violation (or a failed ``--deep`` analysis), and 2 when even salvage
recovers nothing.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import os
import signal
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.analysis.hints import generate_hints
from repro.analysis.methodology import describe_application, run_case_study
from repro.analysis.pipeline import AnalyzerConfig, FoldingAnalyzer
from repro.analysis.report import (
    format_table,
    render_report,
    render_store_listing,
)
from repro.errors import (
    AnalysisError,
    ReproError,
    SalvageError,
    StoreLockError,
    StreamError,
    TraceFormatError,
)
from repro.machine.cpu import CoreModel
from repro.machine.spec import MachineSpec
from repro.observability import (
    PROGRESS_LOGGER,
    JobStateTracker,
    Observability,
    RunLedger,
    TelemetryServer,
    configure_cli_logging,
    read_profile_json,
    render_hotspots,
    render_metrics,
    render_profile_tree,
    stage_table,
    write_chrome_trace,
    write_jsonl_events,
    write_profile_json,
)
from repro.resilience import Severity
from repro.runtime.engine import ExecutionEngine
from repro.runtime.sampler import SamplerConfig
from repro.runtime.tracer import Tracer, TracerConfig
from repro.service import (
    BatchConfig,
    LiveDashboard,
    check_history,
    diff_stored,
    kernel_shift_note,
    load_manifest,
    run_batch,
    stage_series,
)
from repro.store import (
    ResultStore,
    analyze_cached,
    fingerprint_config,
    fingerprint_trace_file,
    fsck_store,
    result_to_dict,
)
from repro.stream import (
    StreamConfig,
    StreamEngine,
    TraceTailSource,
    resume_engine,
    save_checkpoint,
)
from repro.trace.reader import read_trace, read_trace_salvaged
from repro.trace.stats import compute_stats
from repro.trace.writer import write_trace
from repro.workload.apps import (
    cgpop_app,
    cgpop_optimized,
    dalton_app,
    dalton_optimized,
    mrgenesis_app,
    mrgenesis_optimized,
    multiphase_app,
    pmemd_app,
    pmemd_optimized,
)

__all__ = ["main", "APP_BUILDERS"]

APP_BUILDERS: Dict[str, Callable] = {
    "multiphase": multiphase_app,
    "cgpop": cgpop_app,
    "pmemd": pmemd_app,
    "mrgenesis": mrgenesis_app,
    "dalton": dalton_app,
}

OPTIMIZERS: Dict[str, tuple] = {
    "cgpop": (cgpop_optimized, "cache blocking of the stencil"),
    "pmemd": (pmemd_optimized, "vectorization of the force loop"),
    "mrgenesis": (mrgenesis_optimized, "if-conversion of the Riemann solver"),
    "dalton": (dalton_optimized, "master/worker collection restructuring"),
}


def _build_app(args: argparse.Namespace):
    try:
        builder = APP_BUILDERS[args.app]
    except KeyError:
        raise SystemExit(
            f"unknown app {args.app!r}; choose from {sorted(APP_BUILDERS)}"
        )
    return builder(iterations=args.iterations, ranks=args.ranks)


def _core() -> CoreModel:
    return CoreModel(MachineSpec())


def _add_app_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app", default="cgpop", help=f"application ({sorted(APP_BUILDERS)})"
    )
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--period-ms", type=float, default=20.0, help="sampling period (ms)"
    )


def _cmd_apps(_args: argparse.Namespace) -> int:
    for name, builder in sorted(APP_BUILDERS.items()):
        doc = (builder.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<12} {doc}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    app = _build_app(args)
    timeline = ExecutionEngine(_core(), seed=args.seed).run(app)
    config = TracerConfig(
        sampler=SamplerConfig(period_s=args.period_ms / 1e3), seed=args.seed
    )
    trace = Tracer(config).trace(timeline)
    write_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_records} records, "
        f"{trace.n_ranks} ranks, {trace.duration:.3f}s simulated"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    stats = compute_stats(trace)
    print(f"application:        {trace.app_name or '(unnamed)'}")
    print(f"ranks:              {stats.n_ranks}")
    print(f"duration:           {stats.duration:.3f} s")
    print(f"states/probes/samples: {stats.n_states}/{stats.n_probes}/{stats.n_samples}")
    print(f"compute fraction:   {stats.compute_fraction:.1%}")
    print(f"parallel efficiency:{stats.parallel_efficiency:>7.2f}")
    print(f"mean sample period: {stats.mean_sample_period * 1e3:.2f} ms")
    print(f"samples inside MPI: {stats.samples_in_mpi_fraction:.1%}")
    return 0


@contextlib.contextmanager
def _input_path(path: str, suffix: str = ".rpt"):
    """Yield a real filesystem path for ``path``; ``-`` spools stdin.

    Every command that names an input file accepts ``-`` through this:
    stdin is copied to a temp file (removed on exit from the block), so
    downstream code — including byte-hashing store fingerprints — only
    ever sees ordinary paths.
    """
    if path != "-":
        yield path
        return
    fd, tmp = tempfile.mkstemp(prefix="repro-stdin-", suffix=suffix)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for chunk in iter(lambda: sys.stdin.read(1 << 16), ""):
                handle.write(chunk)
        yield tmp
    finally:
        os.unlink(tmp)


def _cmd_check(args: argparse.Namespace) -> int:
    with _input_path(args.trace) as trace_path:
        args.trace = trace_path
        return _cmd_check_impl(args)


def _cmd_check_impl(args: argparse.Namespace) -> int:
    if not os.path.exists(args.trace):
        print(f"check FAILED: no such file: {args.trace}")
        return 2
    if args.salvage:
        try:
            trace, report = read_trace_salvaged(args.trace)
        except SalvageError as exc:
            print(f"check FAILED (nothing salvageable): {exc}")
            return 2
        print(report.summary())
    else:
        try:
            trace = read_trace(args.trace)
        except TraceFormatError as exc:
            print(f"check FAILED (strict): {exc}")
            print("hint: re-run with --salvage to recover what is readable")
            return 1
        report = None
        print(f"strict read OK: {trace.n_records} records, {trace.n_ranks} ranks")

    stats = compute_stats(trace)
    print(
        f"trace summary: {trace.app_name or '(unnamed)'}, "
        f"{stats.duration:.3f}s, "
        f"{stats.n_states}/{stats.n_probes}/{stats.n_samples} "
        f"states/probes/samples"
    )
    if args.deep:
        try:
            result = FoldingAnalyzer().analyze(trace, salvage=report)
        except AnalysisError as exc:
            print(f"deep check FAILED: {exc}")
            return 1
        print(
            f"deep check OK: {result.n_clusters_analyzed} cluster(s) analyzed, "
            f"{len(result.skipped)} skipped"
        )
        print(result.diagnostics.summary())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    with _input_path(args.trace) as trace_path:
        args.trace = trace_path
        return _cmd_analyze_impl(args)


def _cmd_analyze_impl(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    config = AnalyzerConfig(n_jobs=args.jobs)

    def produce():
        if args.store:
            cached = analyze_cached(args.trace, ResultStore(args.store), config=config)
            note = "cache hit" if cached.cache_hit else "analyzed and stored"
            print(
                f"store: {note} ({cached.fingerprint[:12]}) in {args.store}",
                file=sys.stderr,
            )
            return cached.result
        trace = read_trace(args.trace)
        return FoldingAnalyzer(config).analyze(trace)

    sinks_requested = bool(args.profile or args.log_jsonl or args.chrome_trace)
    if sinks_requested or args.store:
        # Activate a fresh collector around the whole command so the
        # read_trace span lands in the same profile as the analysis —
        # and, with --store, in the store's telemetry ledger.
        obs = Observability()
        start = time.perf_counter()
        with obs.activate():
            result = produce()
        wall_s = time.perf_counter() - start
        profile = obs.profile()
        metrics = obs.metrics.snapshot()
        if args.store:
            _record_ledger_run(
                args.store, "analyze", wall_s, profile, metrics, config
            )
        if args.profile:
            write_profile_json(args.profile, profile, metrics)
            print(f"profile written to {args.profile}", file=sys.stderr)
        if args.log_jsonl:
            with open(args.log_jsonl, "w") as fh:
                n = write_jsonl_events(fh, profile, metrics, result.diagnostics)
            print(
                f"{n} events written to {args.log_jsonl}", file=sys.stderr
            )
        if args.chrome_trace:
            write_chrome_trace(args.chrome_trace, profile)
            print(
                f"chrome trace written to {args.chrome_trace} "
                "(load in chrome://tracing or ui.perfetto.dev)",
                file=sys.stderr,
            )
    else:
        result = produce()
    hints = generate_hints(result)
    print(render_report(result, hints))
    worst = result.diagnostics.worst
    if args.strict and worst is not None and worst >= Severity.DEGRADED:
        print(
            f"strict: diagnostics reached {worst} "
            f"(degraded-mode fallbacks were taken); failing",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from_stdin = args.trace == "-"
    if from_stdin and (args.checkpoint or args.resume):
        print("watch: --checkpoint/--resume need a real file, not stdin",
              file=sys.stderr)
        return 1
    if args.resume and not args.checkpoint:
        print("watch: --resume needs --checkpoint PATH", file=sys.stderr)
        return 1
    try:
        config = StreamConfig(
            warmup_bursts=args.warmup,
            reservoir_capacity=args.reservoir,
            refit_every=args.refit_every,
            seed=args.seed,
            salvage=args.salvage,
        )
    except StreamError as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 1

    try:
        if args.resume:
            engine, source = resume_engine(args.checkpoint, args.trace, config)
            print(
                f"watch: resumed from {args.checkpoint} at byte "
                f"{source.offset} ({engine.n_records} records in)",
                file=sys.stderr,
            )
        elif from_stdin:
            engine = StreamEngine(config)
            source = TraceTailSource.from_stream(sys.stdin)
        else:
            if not os.path.exists(args.trace):
                print(f"watch: no such file: {args.trace}", file=sys.stderr)
                return 1
            engine = StreamEngine(config)
            source = TraceTailSource(args.trace)
    except StreamError as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 1

    # File mode needs a stop condition; without one, "the trace stopped
    # growing" is the only sane default.
    idle_timeout = args.until_idle
    if not from_stdin and idle_timeout is None and args.max_seconds is None:
        idle_timeout = 5.0

    interrupted = {"flag": False}

    def _on_sigint(_signum, _frame):
        interrupted["flag"] = True

    def _checkpoint(eng: StreamEngine, src: TraceTailSource) -> None:
        digest = save_checkpoint(args.checkpoint, eng, src)
        eng.n_checkpoints += 1
        eng_obs.publish(
            "stream_checkpoint",
            label="watch",
            path=args.checkpoint,
            offset=src.offset,
            digest=digest[:12],
        )

    eng_obs = Observability()
    server = None
    previous_handler = signal.signal(signal.SIGINT, _on_sigint)
    start = time.perf_counter()
    try:
        if args.metrics_port is not None:
            server = TelemetryServer(eng_obs.metrics, port=args.metrics_port)
            try:
                port = server.start()
            except ReproError as exc:
                print(f"watch: {exc}", file=sys.stderr)
                return 1
            print(
                f"telemetry: serving /metrics on http://127.0.0.1:{port}",
                file=sys.stderr,
            )
        with eng_obs.activate():
            try:
                reason = engine.follow(
                    source,
                    poll_interval=args.poll,
                    idle_timeout=idle_timeout,
                    max_seconds=args.max_seconds,
                    on_checkpoint=_checkpoint if args.checkpoint else None,
                    checkpoint_every=(
                        args.checkpoint_every if args.checkpoint else None
                    ),
                    should_stop=lambda: interrupted["flag"],
                )
            except StreamError as exc:
                print(f"watch: {exc}", file=sys.stderr)
                return 1
            if reason == "stopped":
                if args.checkpoint:
                    _checkpoint(engine, source)
                    print(
                        f"watch: interrupted; checkpoint saved to "
                        f"{args.checkpoint} (resume with --resume)",
                        file=sys.stderr,
                    )
                else:
                    print("watch: interrupted before finalization",
                          file=sys.stderr)
                print(engine.report().render(), file=sys.stderr)
                return 130
            result = engine.finalize(source)
        wall_s = time.perf_counter() - start
    finally:
        signal.signal(signal.SIGINT, previous_handler)
        if server is not None:
            server.close()
        source.close()
        if from_stdin:
            # The stdin spool outlives the source only until finalize has
            # re-read it; it is ours to remove.
            with contextlib.suppress(OSError):
                os.unlink(source.final_path())

    if args.store:
        if from_stdin:
            print("watch: --store skipped for stdin input (no stable "
                  "trace file to fingerprint)", file=sys.stderr)
        else:
            store = ResultStore(args.store)
            fingerprint = fingerprint_trace_file(
                args.trace, config.analyzer, salvage=config.salvage
            )
            store.put(fingerprint, result, meta={"source": "watch"})
            print(
                f"store: finalized result stored ({fingerprint[:12]}) "
                f"in {args.store}",
                file=sys.stderr,
            )
            _record_ledger_run(
                args.store, "watch", wall_s, eng_obs.profile(),
                eng_obs.metrics.snapshot(), config.analyzer,
            )

    report = engine.report()
    if args.json:
        document = {
            "format": "repro-watch/1",
            "reason": reason,
            "stream": report.to_dict(),
            "result": result_to_dict(result),
        }
        print(json.dumps(document, indent=1, sort_keys=True))
        print(report.render(), file=sys.stderr)
    else:
        hints = generate_hints(result)
        print(render_report(result, hints))
        print(report.render(), file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with _input_path(args.profile, suffix=".json") as profile_path:
        args.profile = profile_path
        return _cmd_report_impl(args)


def _cmd_report_impl(args: argparse.Namespace) -> int:
    try:
        profile, metrics = read_profile_json(args.profile)
    except (OSError, ReproError) as exc:
        print(f"cannot read profile: {exc}", file=sys.stderr)
        return 1
    print(render_hotspots(profile))
    print()
    print(render_profile_tree(profile))
    if metrics:
        print()
        print(render_metrics(metrics))
    if args.chrome:
        write_chrome_trace(args.chrome, profile)
        # Status goes to stderr like `analyze --chrome-trace`, keeping
        # stdout clean for the report itself.
        print(
            f"chrome trace written to {args.chrome} "
            "(load in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


def _record_ledger_run(store_root, kind, wall_s, profile, metrics, config) -> None:
    """Append one run record to the store's telemetry ledger (best effort)."""
    ledger = RunLedger(store_root)
    try:
        ledger.append(
            ledger.build_record(
                kind=kind,
                wall_s=wall_s,
                stages=stage_table(profile),
                metrics=dict(metrics),
                config_fingerprint=fingerprint_config(config),
            )
        )
    except OSError as exc:
        print(f"telemetry: ledger write failed: {exc}", file=sys.stderr)


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        specs = load_manifest(args.manifest)
    except ReproError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 1
    try:
        config = BatchConfig(
            n_workers=args.workers,
            max_attempts=args.attempts,
            backoff_base_s=args.backoff,
            salvage=args.salvage,
            deadline_s=args.deadline,
            resume=args.resume,
        )
    except ReproError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 1
    store = ResultStore(args.store)
    obs = Observability()
    dashboard = None
    server = None
    progress_logger = logging.getLogger(PROGRESS_LOGGER)
    progress_was_disabled = progress_logger.disabled
    try:
        if args.live and sys.stderr.isatty():
            # The in-place redraws and the per-job progress lines share
            # stderr; silence the latter while the dashboard owns it.
            dashboard = LiveDashboard()
            obs.events.subscribe(dashboard)
            progress_logger.disabled = True
        if args.metrics_port is not None:
            tracker = JobStateTracker(registry=obs.metrics)
            obs.events.subscribe(tracker)
            server = TelemetryServer(
                obs.metrics, tracker=tracker, port=args.metrics_port
            )
            try:
                port = server.start()
            except ReproError as exc:
                print(f"batch: {exc}", file=sys.stderr)
                return 1
            print(
                f"telemetry: serving /metrics and /healthz on "
                f"http://127.0.0.1:{port}",
                file=sys.stderr,
            )
        try:
            with obs.activate():
                report = run_batch(specs, store, config)
        except StoreLockError as exc:
            print(f"batch: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            # Belt and braces: run_batch drains SIGINT cooperatively on
            # the main thread, so reaching here means the interrupt
            # landed outside the scheduler's window.  Never exit 0 on a
            # Ctrl-C.
            print("batch: interrupted before completion", file=sys.stderr)
            sys.stderr.flush()
            return 130
    finally:
        if dashboard is not None:
            obs.events.unsubscribe(dashboard)
            dashboard.close()
            progress_logger.disabled = progress_was_disabled
        if server is not None:
            server.close()
    if args.json:
        # Machine-readable report owns stdout; the human table moves to
        # stderr so `repro batch --json | jq` stays clean.
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
        print(report.render_status(), file=sys.stderr)
    else:
        print(report.render_status())
    sys.stdout.flush()
    latency = obs.metrics.histogram("service.job_seconds")
    if latency.count:
        print(
            f"job latency: p50 {latency.quantile(0.5):.3f}s, "
            f"p95 {latency.quantile(0.95):.3f}s, "
            f"max {latency.max:.3f}s",
            file=sys.stderr,
        )
    if report.diagnostics:
        print(report.diagnostics.summary(), file=sys.stderr)
    if report.interrupted:
        # Partial run: the status table above is the flushed partial
        # report; 130 is the conventional "died on SIGINT" exit code.
        return 130
    return 0 if report.ok else 1


def _cmd_query(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if args.fingerprint:
        try:
            fingerprint = store.resolve(args.fingerprint)
            result = store.get(fingerprint)
            meta = store.get_meta(fingerprint)
        except ReproError as exc:
            print(f"query: {exc}", file=sys.stderr)
            return 1
        print(
            f"stored result {fingerprint[:12]} "
            f"(trace: {meta.get('trace_path', '?')})\n"
        )
        print(render_report(result, generate_hints(result)))
        return 0
    entries = list(store.entries())
    if not entries:
        print(f"store {args.store} is empty")
        return 0
    print(render_store_listing(entries))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    try:
        report = diff_stored(
            store, args.baseline, args.candidate, threshold=args.threshold
        )
    except ReproError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 1 if report.has_regressions else 0


def _cmd_store_fsck(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    obs = Observability()
    with obs.activate():
        report = fsck_store(store, repair=args.repair)
    print(report.render())
    quarantined = store.quarantined()
    if quarantined:
        print(
            f"quarantine holds {len(quarantined)} artifact(s) "
            f"(see {store.quarantine_dir})",
            file=sys.stderr,
        )
    return 0 if report.healthy else 1


def _cmd_perf_history(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.store)
    records = ledger.records()
    if not records:
        print(f"perf: no telemetry records at {ledger.path}")
        return 0
    kinds: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    by_kind = ", ".join(f"{n} {kind}" for kind, n in sorted(kinds.items()))
    print(f"{len(records)} run(s) recorded ({by_kind}) in {ledger.path}")
    rows = []
    for stage, durations in sorted(stage_series(records).items()):
        if args.stage and stage != args.stage:
            continue
        rows.append(
            [
                stage,
                str(len(durations)),
                f"{sum(durations) / len(durations):.4f}",
                f"{min(durations):.4f}",
                f"{max(durations):.4f}",
                f"{durations[-1]:.4f}",
            ]
        )
    if not rows:
        print(f"perf: no stage named {args.stage!r} in the ledger",
              file=sys.stderr)
        return 1
    print(format_table(
        ["stage", "runs", "mean s", "min s", "max s", "latest s"], rows
    ))
    kernel_note = kernel_shift_note(records)
    if kernel_note:
        print(kernel_note)
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.store)
    records = ledger.records()
    if not records:
        # A fresh store has no history to regress against; the gate must
        # pass so CI can run the check from day one.
        print(f"perf: no telemetry records at {ledger.path}; nothing to check")
        return 0
    try:
        report = check_history(
            records, threshold=args.threshold, min_runs=args.min_runs
        )
    except ReproError as exc:
        print(f"perf: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    if report.regressions and not args.gate:
        print(
            "perf: regressions detected (informational; use --gate to fail)",
            file=sys.stderr,
        )
    return 1 if args.gate and not report.ok else 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.verify import available_suites, run_selftest

    if args.list_suites:
        for name in available_suites():
            print(name)
        return 0
    report = run_selftest(full=args.full, seed=args.seed, suites=args.suite)
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    app = _build_app(args)
    core = _core()
    if args.optimize:
        if args.app not in OPTIMIZERS:
            raise SystemExit(
                f"no built-in optimization for {args.app!r}; "
                f"available: {sorted(OPTIMIZERS)}"
            )
        optimizer, name = OPTIMIZERS[args.app]
        result, before, after = run_case_study(
            app, optimizer, core, name, seed=args.seed
        )
        print(before.report)
        print(f"transformation: {name}")
        print(
            f"wall time {result.base_wall_s:.3f}s -> {result.optimized_wall_s:.3f}s  "
            f"({result.speedup:.3f}x, {result.improvement_percent:.1f}% faster)"
        )
        print("\ncluster movement (before -> after):")
        from repro.analysis.tracking import render_comparison

        print(render_comparison(before.result, after.result))
    else:
        description = describe_application(app, core, seed=args.seed)
        print(description.report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Folding + piece-wise linear regression phase detection",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v shows repro.* INFO logs, -vv adds DEBUG with timestamps",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="silence stage-progress lines (warnings still shown)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list built-in applications").set_defaults(
        func=_cmd_apps
    )

    p_trace = sub.add_parser("trace", help="run an app and write its trace")
    _add_app_options(p_trace)
    p_trace.add_argument("-o", "--output", required=True, help="trace file path")
    p_trace.set_defaults(func=_cmd_trace)

    p_stats = sub.add_parser("stats", help="summarize a trace file")
    p_stats.add_argument("trace", help="trace file path")
    p_stats.set_defaults(func=_cmd_stats)

    p_check = sub.add_parser(
        "check", help="validate a trace file (exit 0 = usable)"
    )
    p_check.add_argument("trace", help="trace file path, or - for stdin")
    p_check.add_argument(
        "--salvage",
        action="store_true",
        help="skip damaged lines and report them instead of failing",
    )
    p_check.add_argument(
        "--deep",
        action="store_true",
        help="also run the folding analysis and print its diagnostics",
    )
    p_check.set_defaults(func=_cmd_check)

    p_analyze = sub.add_parser("analyze", help="folding analysis of a trace file")
    p_analyze.add_argument("trace", help="trace file path, or - for stdin")
    p_analyze.add_argument(
        "--profile",
        metavar="PATH",
        help="write a structured per-stage timing profile (JSON)",
    )
    p_analyze.add_argument(
        "--log-jsonl",
        metavar="PATH",
        help="write span/metric/diagnostic events as JSON lines",
    )
    p_analyze.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="write a Chrome trace_event file for chrome://tracing / Perfetto",
    )
    p_analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze clusters on N worker processes (1 = serial; "
        "results are identical to a serial run)",
    )
    p_analyze.add_argument(
        "--store",
        metavar="DIR",
        help="read-through result store: reuse a stored result when the "
        "trace+config fingerprint matches, store the result otherwise",
    )
    p_analyze.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when diagnostics record degraded-mode "
        "fallbacks (severity >= degraded)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_watch = sub.add_parser(
        "watch",
        help="follow a growing trace, keep a live phase model, and emit "
        "the exact batch result once it stops",
    )
    p_watch.add_argument(
        "trace", help="trace file to follow (may still be growing), or - for stdin"
    )
    p_watch.add_argument(
        "--until-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="finalize once the file has not grown for this long "
        "(default 5s in file mode when no other stop condition is given)",
    )
    p_watch.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="finalize after at most this much wall time",
    )
    p_watch.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="poll interval while waiting for new bytes (default 0.2)",
    )
    p_watch.add_argument(
        "--json",
        action="store_true",
        help="print {format, reason, stream, result} as JSON on stdout "
        "(the human summary moves to stderr)",
    )
    p_watch.add_argument(
        "--store",
        metavar="DIR",
        help="store the finalized result under the analyze-compatible "
        "trace+config fingerprint (a later `analyze --store` cache-hits it)",
    )
    p_watch.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically save resumable engine state to PATH "
        "(also saved on Ctrl-C)",
    )
    p_watch.add_argument(
        "--checkpoint-every",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="checkpoint cadence (default 30; needs --checkpoint)",
    )
    p_watch.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint PATH instead of starting fresh",
    )
    p_watch.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve OpenMetrics stream.live.* gauges on localhost:PORT "
        "(0 = ephemeral)",
    )
    p_watch.add_argument(
        "--salvage",
        action="store_true",
        help="finalize with the salvage read policy (matches "
        "`check --salvage` + a salvage analysis)",
    )
    p_watch.add_argument(
        "--warmup",
        type=int,
        default=48,
        metavar="N",
        help="bursts collected before the first online model fit (default 48)",
    )
    p_watch.add_argument(
        "--reservoir",
        type=int,
        default=64,
        metavar="N",
        help="per-cluster reservoir capacity bounding live memory (default 64)",
    )
    p_watch.add_argument(
        "--refit-every",
        type=int,
        default=32,
        metavar="N",
        help="refold + refit a cluster every N assigned bursts (default 32)",
    )
    p_watch.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="reservoir-sampling seed (default 0)",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_report = sub.add_parser(
        "report", help="render a profile written by `analyze --profile`"
    )
    p_report.add_argument("profile", help="profile JSON path, or - for stdin")
    p_report.add_argument(
        "--chrome",
        metavar="PATH",
        help="also export the profile as a Chrome trace_event file",
    )
    p_report.set_defaults(func=_cmd_report)

    p_batch = sub.add_parser(
        "batch", help="analyze a directory/manifest of traces through a store"
    )
    p_batch.add_argument(
        "manifest",
        help="directory of *.rpt traces, or a file listing one trace per line",
    )
    p_batch.add_argument(
        "--store", required=True, metavar="DIR", help="result store directory"
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="concurrent analysis jobs (1 = inline, no threads)",
    )
    p_batch.add_argument(
        "--attempts",
        type=int,
        default=1,
        metavar="N",
        help="tries per job before it is recorded as failed",
    )
    p_batch.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base retry backoff (doubles per attempt; 0 = immediate)",
    )
    p_batch.add_argument(
        "--salvage",
        action="store_true",
        help="read damaged traces with the salvage policy",
    )
    p_batch.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job deadline; each attempt runs in a killable worker "
        "process and a hung job is killed and recorded as timeout",
    )
    p_batch.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs the store journal records as already complete "
        "(after a crash, kill, or Ctrl-C)",
    )
    p_batch.add_argument(
        "--live",
        action="store_true",
        help="in-place TTY status dashboard (states, rate, ETA, slowest "
        "running jobs); falls back to progress lines when not a TTY",
    )
    p_batch.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics (OpenMetrics) and /healthz (live job states) "
        "on 127.0.0.1:PORT for the duration of the batch (0 = ephemeral)",
    )
    p_batch.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report as JSON on stdout "
        "(the human table moves to stderr)",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_query = sub.add_parser(
        "query", help="list a result store, or re-render one stored report"
    )
    p_query.add_argument("store", help="result store directory")
    p_query.add_argument(
        "fingerprint",
        nargs="?",
        help="fingerprint (or unique prefix) of the stored result to render",
    )
    p_query.set_defaults(func=_cmd_query)

    p_diff = sub.add_parser(
        "diff", help="compare two stored results (exit 1 on regressions)"
    )
    p_diff.add_argument("store", help="result store directory")
    p_diff.add_argument("baseline", help="baseline fingerprint (or prefix)")
    p_diff.add_argument("candidate", help="candidate fingerprint (or prefix)")
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="minimum relative change reported (default 0.10 = 10%%)",
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_store = sub.add_parser("store", help="result-store maintenance")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_fsck = store_sub.add_parser(
        "fsck", help="scan a store for corrupt artifacts (exit 1 if unhealthy)"
    )
    p_fsck.add_argument("store", help="result store directory")
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help="upgrade legacy artifacts, quarantine + re-derive corrupt "
        "ones, evict what cannot be recovered, drop stale temp files",
    )
    p_fsck.set_defaults(func=_cmd_store_fsck)

    p_perf = sub.add_parser(
        "perf",
        help="self-regression checks over a store's telemetry ledger",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    p_perf_history = perf_sub.add_parser(
        "history", help="summarize recorded runs and per-stage durations"
    )
    p_perf_history.add_argument("store", help="result store directory")
    p_perf_history.add_argument(
        "--stage", metavar="NAME", help="show only this stage"
    )
    p_perf_history.set_defaults(func=_cmd_perf_history)
    p_perf_check = perf_sub.add_parser(
        "check",
        help="fit the PWLR model to each stage's duration history and "
        "report level shifts as regressions",
    )
    p_perf_check.add_argument("store", help="result store directory")
    p_perf_check.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when any stage's latest level exceeds the previous "
        "segment by more than --threshold",
    )
    p_perf_check.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        metavar="FACTOR",
        help="level-shift factor that counts as a regression (default 1.5)",
    )
    p_perf_check.add_argument(
        "--min-runs",
        type=int,
        default=8,
        metavar="N",
        help="stages with fewer recorded runs are reported as "
        "insufficient, never failed (default 8, the fitter's floor)",
    )
    p_perf_check.set_defaults(func=_cmd_perf_check)

    p_selftest = sub.add_parser(
        "selftest",
        help="differential self-verification: optimized stages vs scalar "
        "oracles on seeded corpora (exit 1 on any divergence)",
    )
    scale = p_selftest.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        help="small corpora sized for CI (the default)",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="larger corpora and more random draws per suite",
    )
    p_selftest.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="corpus seed (a divergence report names the seed that "
        "reproduces it; default 0)",
    )
    p_selftest.add_argument(
        "--suite",
        action="append",
        metavar="NAME",
        help="run only this suite (repeatable; see --list)",
    )
    p_selftest.add_argument(
        "--list",
        action="store_true",
        dest="list_suites",
        help="list available suites and exit",
    )
    p_selftest.add_argument(
        "--report",
        metavar="PATH",
        help="also write the structured JSON divergence report to PATH",
    )
    p_selftest.set_defaults(func=_cmd_selftest)

    p_demo = sub.add_parser("demo", help="full methodology on a built-in app")
    _add_app_options(p_demo)
    p_demo.add_argument(
        "--optimize",
        action="store_true",
        help="also apply the app's case-study transformation and compare",
    )
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(-1 if args.quiet else args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
