"""Source files, routines and code locations.

These objects are deliberately lightweight and hashable: call-stack samples
reference them by identity millions of times per run, and the folding stage
groups samples by frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["SourceFile", "Routine", "CodeLocation", "SourceModel"]


@dataclass(frozen=True)
class SourceFile:
    """A synthetic source file (path + language tag)."""

    path: str
    language: str = "fortran"

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("source file path must be non-empty")

    @property
    def basename(self) -> str:
        """File name without directories, used in compact report output."""
        return self.path.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class Routine:
    """A routine (function/subroutine) spanning a line range of a file."""

    name: str
    file: SourceFile
    line_start: int
    line_end: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("routine name must be non-empty")
        if self.line_start < 1 or self.line_end < self.line_start:
            raise ValueError(
                f"routine {self.name}: invalid line range "
                f"[{self.line_start}, {self.line_end}]"
            )

    def contains_line(self, line: int) -> bool:
        """Whether ``line`` falls inside this routine's body."""
        return self.line_start <= line <= self.line_end

    @property
    def label(self) -> str:
        """``routine (file:start-end)`` display label."""
        return f"{self.name} ({self.file.basename}:{self.line_start}-{self.line_end})"


@dataclass(frozen=True)
class CodeLocation:
    """A precise location: routine + line (the unit phases are mapped to)."""

    routine: Routine
    line: int

    def __post_init__(self) -> None:
        if not self.routine.contains_line(self.line):
            raise ValueError(
                f"line {self.line} outside routine {self.routine.name} "
                f"[{self.routine.line_start}, {self.routine.line_end}]"
            )

    @property
    def label(self) -> str:
        """``file:line (routine)`` display label."""
        return f"{self.routine.file.basename}:{self.line} ({self.routine.name})"


@dataclass
class SourceModel:
    """Registry of the synthetic application's files and routines.

    Provides the reverse lookups the mapping stage needs (line → routine)
    and validates that routines within one file do not overlap, which would
    make line attribution ambiguous.
    """

    files: Dict[str, SourceFile] = field(default_factory=dict)
    routines: Dict[str, Routine] = field(default_factory=dict)

    def add_file(self, path: str, language: str = "fortran") -> SourceFile:
        """Register (or fetch) a file by path."""
        existing = self.files.get(path)
        if existing is not None:
            return existing
        sf = SourceFile(path=path, language=language)
        self.files[path] = sf
        return sf

    def add_routine(
        self, name: str, file: SourceFile, line_start: int, line_end: int
    ) -> Routine:
        """Register a routine, enforcing unique names and no line overlap."""
        if name in self.routines:
            raise ValueError(f"routine {name} already registered")
        routine = Routine(name=name, file=file, line_start=line_start, line_end=line_end)
        for other in self.routines.values():
            if other.file == file and _ranges_overlap(
                (routine.line_start, routine.line_end),
                (other.line_start, other.line_end),
            ):
                raise ValueError(
                    f"routine {name} lines [{line_start},{line_end}] overlap "
                    f"{other.name} [{other.line_start},{other.line_end}] in {file.path}"
                )
        self.routines[name] = routine
        return routine

    def routine_at(self, file: SourceFile, line: int) -> Optional[Routine]:
        """Routine containing ``file:line``, or ``None``."""
        for routine in self.routines.values():
            if routine.file == file and routine.contains_line(line):
                return routine
        return None

    def location(self, routine_name: str, line: int) -> CodeLocation:
        """Build a :class:`CodeLocation` inside a registered routine."""
        routine = self.routines.get(routine_name)
        if routine is None:
            known = ", ".join(sorted(self.routines))
            raise KeyError(f"unknown routine {routine_name!r}; known: {known}")
        return CodeLocation(routine=routine, line=line)

    def __iter__(self) -> Iterator[Routine]:
        return iter(self.routines.values())

    def __len__(self) -> int:
        return len(self.routines)


def _ranges_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]
