"""Synthetic source-code model.

The paper maps detected phases onto the application's *syntactical
structure* — files, routines, loops, lines.  Real tools get this from debug
information; the reproduction models it explicitly: workloads declare the
routines and line ranges their phases execute, the sampler captures call
stacks built from these objects, and the phase-mapping stage correlates
fitted segments with the sampled frames.
"""

from repro.source.model import CodeLocation, Routine, SourceFile, SourceModel
from repro.source.callpath import CallFrame, CallPath

__all__ = [
    "SourceFile",
    "Routine",
    "CodeLocation",
    "SourceModel",
    "CallFrame",
    "CallPath",
]
