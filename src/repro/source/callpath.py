"""Call frames and call paths.

A :class:`CallPath` is the (immutable, hashable) stack of frames active at a
sampling tick, outermost first — exactly what a sampling tracer unwinds.  The
folding stage folds call paths alongside counters; the mapping stage
intersects them with fitted segments to attribute phases to code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.source.model import CodeLocation, Routine

__all__ = ["CallFrame", "CallPath"]


@dataclass(frozen=True)
class CallFrame:
    """One stack frame: the routine plus the line currently executing."""

    location: CodeLocation

    @property
    def routine(self) -> Routine:
        """The routine this frame executes in."""
        return self.location.routine

    @property
    def line(self) -> int:
        """The source line currently executing in this frame."""
        return self.location.line

    @property
    def label(self) -> str:
        """``file:line (routine)`` display label."""
        return self.location.label


@dataclass(frozen=True)
class CallPath:
    """An immutable call stack, outermost frame first."""

    frames: Tuple[CallFrame, ...]

    def __init__(self, frames: Sequence[CallFrame]) -> None:
        object.__setattr__(self, "frames", tuple(frames))
        if not self.frames:
            raise ValueError("a call path needs at least one frame")

    @property
    def leaf(self) -> CallFrame:
        """Innermost frame — where the PC actually is."""
        return self.frames[-1]

    @property
    def root(self) -> CallFrame:
        """Outermost frame (``main``-like)."""
        return self.frames[0]

    @property
    def depth(self) -> int:
        """Number of frames."""
        return len(self.frames)

    def push(self, frame: CallFrame) -> "CallPath":
        """New call path with ``frame`` appended as the new leaf."""
        return CallPath(self.frames + (frame,))

    def pop(self) -> "CallPath":
        """New call path with the leaf removed; error at depth 1."""
        if len(self.frames) == 1:
            raise ValueError("cannot pop the last frame of a call path")
        return CallPath(self.frames[:-1])

    def common_prefix(self, other: "CallPath") -> Tuple[CallFrame, ...]:
        """Longest common outer-frame prefix with ``other``."""
        prefix = []
        for a, b in zip(self.frames, other.frames):
            if a != b:
                break
            prefix.append(a)
        return tuple(prefix)

    def contains_routine(self, name: str) -> bool:
        """Whether any frame executes in routine ``name``."""
        return any(f.routine.name == name for f in self.frames)

    def frame_in(self, routine_name: str) -> Optional[CallFrame]:
        """Innermost frame in routine ``routine_name`` (or ``None``)."""
        for frame in reversed(self.frames):
            if frame.routine.name == routine_name:
                return frame
        return None

    @property
    def label(self) -> str:
        """``a > b > c`` chain of routine names, outermost first."""
        return " > ".join(f.routine.name for f in self.frames)

    def __iter__(self) -> Iterator[CallFrame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)
