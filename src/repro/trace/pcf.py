"""Event dictionary — the analog of a Paraver ``.pcf`` sidecar.

The text trace stores counters and states by integer id; the dictionary maps
ids back to names.  Keeping it separate from the trace body mirrors the real
toolchain (``.prv`` + ``.pcf``) and exercises the same failure mode: a trace
whose dictionary is missing or inconsistent must fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TraceFormatError

__all__ = ["EventDictionary"]


@dataclass
class EventDictionary:
    """Bidirectional id <-> name maps for counters and state kinds."""

    counter_ids: Dict[str, int] = field(default_factory=dict)
    state_ids: Dict[str, int] = field(default_factory=dict)
    _next_counter_id: int = 42000000
    _next_state_id: int = 1

    def counter_id(self, name: str) -> int:
        """Id of counter ``name``, allocating on first use."""
        if name not in self.counter_ids:
            self.counter_ids[name] = self._next_counter_id
            self._next_counter_id += 1
        return self.counter_ids[name]

    def state_id(self, name: str) -> int:
        """Id of state kind ``name``, allocating on first use."""
        if name not in self.state_ids:
            self.state_ids[name] = self._next_state_id
            self._next_state_id += 1
        return self.state_ids[name]

    def counter_name(self, cid: int) -> str:
        """Reverse lookup of a counter id."""
        for name, known in self.counter_ids.items():
            if known == cid:
                return name
        raise TraceFormatError(f"counter id {cid} not in event dictionary")

    def state_name(self, sid: int) -> str:
        """Reverse lookup of a state id."""
        for name, known in self.state_ids.items():
            if known == sid:
                return name
        raise TraceFormatError(f"state id {sid} not in event dictionary")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_lines(self) -> List[str]:
        """Serialize as the sidecar text block."""
        lines = ["# repro event dictionary v1"]
        lines.append("[counters]")
        for name, cid in sorted(self.counter_ids.items(), key=lambda kv: kv[1]):
            lines.append(f"{cid} {name}")
        lines.append("[states]")
        for name, sid in sorted(self.state_ids.items(), key=lambda kv: kv[1]):
            lines.append(f"{sid} {name}")
        return lines

    @classmethod
    def from_lines(cls, lines: List[str]) -> "EventDictionary":
        """Parse the sidecar text block back into a dictionary."""
        dictionary = cls()
        section = ""
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line in ("[counters]", "[states]"):
                section = line
                continue
            parts = line.split(maxsplit=1)
            if len(parts) != 2:
                raise TraceFormatError(f"malformed dictionary line: {raw!r}")
            ident_text, name = parts
            try:
                ident = int(ident_text)
            except ValueError:
                raise TraceFormatError(f"non-integer id in dictionary line: {raw!r}") from None
            if section == "[counters]":
                dictionary.counter_ids[name] = ident
                dictionary._next_counter_id = max(dictionary._next_counter_id, ident + 1)
            elif section == "[states]":
                dictionary.state_ids[name] = ident
                dictionary._next_state_id = max(dictionary._next_state_id, ident + 1)
            else:
                raise TraceFormatError(
                    f"dictionary entry before section header: {raw!r}"
                )
        return dictionary
