"""Trace trimming — cut a time window out of a trace.

The spectral-analysis workflow selects a *representative window* and
analyzes it in detail instead of the whole run (Llort et al.).  Trimming
implements the cut: keep the records inside ``[t0, t1]``, clip state
intervals at the edges, and (optionally) rebase times to the window
start.  Instrumentation probes keep their absolute counter values —
folding only ever uses within-burst deltas, so rebasing the *values* is
unnecessary and would discard information.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TraceFormatError
from repro.trace.records import StateRecord, Trace

__all__ = ["trim_trace"]


def trim_trace(
    trace: Trace, t0: float, t1: float, rebase: bool = True
) -> Trace:
    """New trace restricted to ``[t0, t1]``.

    State records overlapping the boundary are clipped; probes/samples
    strictly outside are dropped.  With ``rebase`` (default) times shift
    so the window starts at 0.  Bursts cut by the window edge lose one
    boundary probe and are therefore not foldable — callers selecting
    windows should align them to period boundaries
    (:func:`repro.signal.representative_window` windows are long enough
    that the two edge bursts are a negligible loss).
    """
    if not t0 < t1:
        raise TraceFormatError(f"invalid trim window [{t0}, {t1}]")
    offset = t0 if rebase else 0.0
    out = Trace(
        n_ranks=trace.n_ranks,
        app_name=trace.app_name,
        metadata=dict(trace.metadata),
    )
    out.metadata["trimmed_from"] = f"[{t0!r}, {t1!r}]"
    for state in trace.states:
        if state.t_end <= t0 or state.t_start >= t1:
            continue
        clipped = StateRecord(
            rank=state.rank,
            t_start=max(state.t_start, t0) - offset,
            t_end=min(state.t_end, t1) - offset,
            kind=state.kind,
            label=state.label,
        )
        out.add_state(clipped)
    for probe in trace.instrumentation:
        if t0 <= probe.time <= t1:
            out.add_instrumentation(replace(probe, time=probe.time - offset))
    for sample in trace.samples:
        if t0 <= sample.time <= t1:
            out.add_sample(replace(sample, time=sample.time - offset))
    if out.n_records == 0:
        raise TraceFormatError(
            f"trim window [{t0}, {t1}] contains no records "
            f"(trace duration {trace.duration})"
        )
    return out
