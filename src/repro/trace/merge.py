"""Merging per-rank (or per-run-chunk) traces into one global trace.

Real tracers write one file per process and merge afterwards; the simulated
tracer can do the same when ranks are traced independently.  Merging
re-bases ranks (each input trace's rank 0..n-1 maps to a disjoint global
range), concatenates records, and re-sorts by time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.errors import TraceFormatError
from repro.trace.records import Trace

__all__ = ["merge_traces"]


def merge_traces(traces: Sequence[Trace], app_name: str = "") -> Trace:
    """Merge ``traces`` into one, re-basing rank ids.

    The inputs must agree on the counter vocabulary (same counter names) —
    a mismatch means the runs were configured differently and folding their
    records together would be meaningless.
    """
    if not traces:
        raise TraceFormatError("cannot merge zero traces")
    vocabularies = [tuple(sorted(t.counter_names())) for t in traces]
    if len(set(vocabularies)) > 1:
        raise TraceFormatError(
            f"counter vocabulary mismatch across traces: {sorted(set(vocabularies))}"
        )

    total_ranks = sum(t.n_ranks for t in traces)
    merged = Trace(
        n_ranks=total_ranks,
        app_name=app_name or traces[0].app_name,
    )
    base = 0
    for trace in traces:
        for state in trace.states:
            merged.add_state(replace(state, rank=state.rank + base))
        for probe in trace.instrumentation:
            merged.add_instrumentation(replace(probe, rank=probe.rank + base))
        for sample in trace.samples:
            merged.add_sample(replace(sample, rank=sample.rank + base))
        for key, value in trace.metadata.items():
            merged.metadata.setdefault(key, value)
        base += trace.n_ranks
    merged.sort()
    return merged
