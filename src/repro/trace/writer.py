"""Trace serialization (single-file text format, version 1).

Layout::

    #REPRO-TRACE v1
    app <quoted-name>
    ranks <n>
    meta <quoted-key> <quoted-value>
    [dict]
    <EventDictionary lines>
    [records]
    S <rank> <t0> <t1> <state_id> <quoted-label>
    I <rank> <t> <marker> <quoted-mpi-call> <cid>=<val>,...
    P <rank> <t> <cid>=<val>,... <frames>

Frames are ``routine@file@line`` joined with ``|`` (or ``-`` for in-MPI
samples with an empty stack); free-text fields are percent-quoted so the
format stays strictly whitespace-delimited.  Floats are written with
``repr`` so a write/read round trip is bit-exact — the test suite asserts
this property.

Two writers share the same line formatting:

* :func:`write_trace` — the batch writer: a complete in-memory
  :class:`~repro.trace.records.Trace` to a file in one pass, records
  grouped by tag (all ``S``, then ``I``, then ``P``).
* :class:`TraceTailWriter` — the append-mode live writer: header and
  dictionary up front, then one record per :meth:`~TraceTailWriter.append`
  call, flushed immediately so a follower (``repro watch``) sees each
  record as soon as the producer emits it.
"""

from __future__ import annotations

import io
import os
from typing import IO, List, Mapping, Optional, Union
from urllib.parse import quote

from repro.errors import TraceFormatError
from repro.trace.pcf import EventDictionary
from repro.trace.records import (
    InstrumentationRecord,
    SampleRecord,
    StateKind,
    StateRecord,
    Trace,
)

__all__ = ["write_trace", "dump_trace_text", "TraceTailWriter"]

FORMAT_HEADER = "#REPRO-TRACE v1"


def _format_counters(counters: Mapping[str, float], dictionary: EventDictionary) -> str:
    if not counters:
        return "-"
    return ",".join(
        f"{dictionary.counter_id(name)}={float(value)!r}" for name, value in counters.items()
    )


def _quote(text: str) -> str:
    if not text:
        return "-"
    if text == "-":
        # urllib never percent-encodes "-", which would collide with the
        # empty-field sentinel and read back as "" — escape it by hand.
        return "%2D"
    return quote(text, safe="")


def _format_state(state: StateRecord, dictionary: EventDictionary) -> str:
    return (
        f"S {state.rank} {float(state.t_start)!r} {float(state.t_end)!r} "
        f"{dictionary.state_id(state.kind.value)} {_quote(state.label)}"
    )


def _format_instrumentation(
    probe: InstrumentationRecord, dictionary: EventDictionary
) -> str:
    return (
        f"I {probe.rank} {float(probe.time)!r} {probe.marker} "
        f"{_quote(probe.mpi_call)} {_format_counters(probe.counters, dictionary)}"
    )


def _format_sample(sample: SampleRecord, dictionary: EventDictionary) -> str:
    if sample.frames:
        frames = "|".join(
            f"{_quote(routine)}@{_quote(path)}@{line}"
            for routine, path, line in sample.frames
        )
    else:
        frames = "-"
    return (
        f"P {sample.rank} {float(sample.time)!r} "
        f"{_format_counters(sample.counters, dictionary)} {frames}"
    )


def write_trace(trace: Trace, destination: Union[str, IO[str]]) -> None:
    """Write ``trace`` to a path or text stream."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def dump_trace_text(trace: Trace) -> str:
    """Serialize ``trace`` to a string (round-trip test helper)."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def _write_preamble(
    handle: IO[str],
    dictionary: EventDictionary,
    app_name: str,
    n_ranks: int,
    metadata: Mapping[str, str],
) -> None:
    handle.write(FORMAT_HEADER + "\n")
    handle.write(f"app {_quote(app_name)}\n")
    handle.write(f"ranks {n_ranks}\n")
    for key, value in metadata.items():
        handle.write(f"meta {_quote(key)} {_quote(value)}\n")
    handle.write("[dict]\n")
    for line in dictionary.to_lines():
        handle.write(line + "\n")
    handle.write("[records]\n")


def _write(trace: Trace, handle: IO[str]) -> None:
    dictionary = EventDictionary()
    # Pre-allocate ids in deterministic order (counters as first seen).
    for name in trace.counter_names():
        dictionary.counter_id(name)
    for record in trace.states:
        dictionary.state_id(record.kind.value)

    _write_preamble(handle, dictionary, trace.app_name, trace.n_ranks, trace.metadata)
    for state in trace.states:
        handle.write(_format_state(state, dictionary) + "\n")
    for probe in trace.instrumentation:
        handle.write(_format_instrumentation(probe, dictionary) + "\n")
    for sample in trace.samples:
        handle.write(_format_sample(sample, dictionary) + "\n")


class TraceTailWriter:
    """Append-mode trace writer simulating a live producer.

    The batch writer needs the whole :class:`~repro.trace.records.Trace`
    up front; this one writes the header and a *frozen* event dictionary
    first and then appends one record per call, flushing after every
    line so a concurrent follower (``repro watch``, ``tail -f``) observes
    each record as soon as it exists.  Because the dictionary is frozen
    at creation, a record naming a counter or state that was not
    registered raises :class:`~repro.errors.TraceFormatError` instead of
    silently allocating an id the header never declared.

    Use :meth:`create` to start a new trace file (registering the
    counter vocabulary up front) or :meth:`open` to resume appending to
    an existing one (the header and dictionary are re-read from disk).
    The instance is a context manager; :meth:`close` flushes and closes
    the underlying handle.
    """

    def __init__(
        self,
        path: str,
        handle: IO[str],
        dictionary: EventDictionary,
        n_ranks: int,
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.n_ranks = n_ranks
        self.fsync = fsync
        self.n_appended = 0
        self._handle = handle
        self._dictionary = dictionary
        self._counters = frozenset(dictionary.counter_ids)
        self._states = frozenset(dictionary.state_ids)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        app_name: str,
        n_ranks: int,
        counters: List[str],
        metadata: Optional[Mapping[str, str]] = None,
        fsync: bool = False,
    ) -> "TraceTailWriter":
        """Start a new trace file and return a writer positioned after
        the ``[records]`` marker.

        ``counters`` fixes the counter vocabulary (and its id order) for
        the lifetime of the file; both state kinds are pre-registered so
        ``S`` records never need a dictionary extension either.
        """
        if n_ranks < 1:
            raise TraceFormatError(f"n_ranks must be >= 1, got {n_ranks}")
        dictionary = EventDictionary()
        for name in counters:
            dictionary.counter_id(name)
        for kind in StateKind:
            dictionary.state_id(kind.value)
        handle = open(path, "w", encoding="utf-8")
        _write_preamble(handle, dictionary, app_name, n_ranks, dict(metadata or {}))
        handle.flush()
        writer = cls(path, handle, dictionary, n_ranks, fsync=fsync)
        writer._maybe_fsync()
        return writer

    @classmethod
    def open(cls, path: str, fsync: bool = False) -> "TraceTailWriter":
        """Resume appending to an existing trace file.

        The header and dictionary are re-read from disk (strictly — a
        damaged preamble refuses the append rather than desynchronizing
        ids); the file must already contain its ``[records]`` marker.
        """
        n_ranks = 0
        dict_lines: List[str] = []
        section = "header"
        saw_records = False
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
            if first != FORMAT_HEADER:
                raise TraceFormatError(
                    f"{path}: missing trace header; expected {FORMAT_HEADER!r}"
                )
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if line == "[dict]":
                    section = "dict"
                    continue
                if line == "[records]":
                    saw_records = True
                    break
                if section == "header":
                    parts = line.split()
                    if parts[0] == "ranks" and len(parts) == 2:
                        n_ranks = int(parts[1])
                elif section == "dict":
                    dict_lines.append(line)
        if not saw_records:
            raise TraceFormatError(
                f"{path}: no [records] section — not an appendable trace"
            )
        if n_ranks < 1:
            raise TraceFormatError(f"{path}: header missing a valid 'ranks' line")
        dictionary = EventDictionary.from_lines(dict_lines)
        handle = open(path, "a", encoding="utf-8")
        return cls(path, handle, dictionary, n_ranks, fsync=fsync)

    # ------------------------------------------------------------------
    def _check_counters(self, counters: Mapping[str, float]) -> None:
        unknown = [name for name in counters if name not in self._counters]
        if unknown:
            raise TraceFormatError(
                f"counter(s) {sorted(unknown)} not registered in the tail "
                f"writer's dictionary (frozen at create time; "
                f"registered: {sorted(self._counters)})"
            )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise TraceFormatError(
                f"rank {rank} out of range for a {self.n_ranks}-rank trace"
            )

    def _emit(self, line: str) -> None:
        self._handle.write(line + "\n")
        self._handle.flush()
        self._maybe_fsync()
        self.n_appended += 1

    def _maybe_fsync(self) -> None:
        if self.fsync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def append_state(self, record: StateRecord) -> None:
        """Append one ``S`` record and flush."""
        self._check_rank(record.rank)
        if record.kind.value not in self._states:
            # Possible after open() on a file whose dictionary only ever
            # saw one state kind; allocating now would desync the header.
            raise TraceFormatError(
                f"state kind {record.kind.value!r} not registered in the "
                f"tail writer's dictionary (frozen; "
                f"registered: {sorted(self._states)})"
            )
        self._emit(_format_state(record, self._dictionary))

    def append_instrumentation(self, record: InstrumentationRecord) -> None:
        """Append one ``I`` record and flush."""
        self._check_rank(record.rank)
        self._check_counters(record.counters)
        self._emit(_format_instrumentation(record, self._dictionary))

    def append_sample(self, record: SampleRecord) -> None:
        """Append one ``P`` record and flush."""
        self._check_rank(record.rank)
        self._check_counters(record.counters)
        self._emit(_format_sample(record, self._dictionary))

    def append(
        self, record: Union[StateRecord, InstrumentationRecord, SampleRecord]
    ) -> None:
        """Append any record type (dispatches on the dataclass)."""
        if isinstance(record, StateRecord):
            self.append_state(record)
        elif isinstance(record, InstrumentationRecord):
            self.append_instrumentation(record)
        elif isinstance(record, SampleRecord):
            self.append_sample(record)
        else:
            raise TraceFormatError(f"not a trace record: {record!r}")

    def close(self) -> None:
        """Flush and close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._maybe_fsync()
            self._handle.close()

    def __enter__(self) -> "TraceTailWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
