"""Trace serialization (single-file text format, version 1).

Layout::

    #REPRO-TRACE v1
    app <quoted-name>
    ranks <n>
    meta <quoted-key> <quoted-value>
    [dict]
    <EventDictionary lines>
    [records]
    S <rank> <t0> <t1> <state_id> <quoted-label>
    I <rank> <t> <marker> <quoted-mpi-call> <cid>=<val>,...
    P <rank> <t> <cid>=<val>,... <frames>

Frames are ``routine@file@line`` joined with ``|`` (or ``-`` for in-MPI
samples with an empty stack); free-text fields are percent-quoted so the
format stays strictly whitespace-delimited.  Floats are written with
``repr`` so a write/read round trip is bit-exact — the test suite asserts
this property.
"""

from __future__ import annotations

import io
from typing import IO, Mapping, Union
from urllib.parse import quote

from repro.trace.pcf import EventDictionary
from repro.trace.records import Trace

__all__ = ["write_trace", "dump_trace_text"]

FORMAT_HEADER = "#REPRO-TRACE v1"


def _format_counters(counters: Mapping[str, float], dictionary: EventDictionary) -> str:
    if not counters:
        return "-"
    return ",".join(
        f"{dictionary.counter_id(name)}={float(value)!r}" for name, value in counters.items()
    )


def _quote(text: str) -> str:
    if not text:
        return "-"
    if text == "-":
        # urllib never percent-encodes "-", which would collide with the
        # empty-field sentinel and read back as "" — escape it by hand.
        return "%2D"
    return quote(text, safe="")


def write_trace(trace: Trace, destination: Union[str, IO[str]]) -> None:
    """Write ``trace`` to a path or text stream."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def dump_trace_text(trace: Trace) -> str:
    """Serialize ``trace`` to a string (round-trip test helper)."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def _write(trace: Trace, handle: IO[str]) -> None:
    dictionary = EventDictionary()
    # Pre-allocate ids in deterministic order (counters as first seen).
    for name in trace.counter_names():
        dictionary.counter_id(name)
    for record in trace.states:
        dictionary.state_id(record.kind.value)

    handle.write(FORMAT_HEADER + "\n")
    handle.write(f"app {_quote(trace.app_name)}\n")
    handle.write(f"ranks {trace.n_ranks}\n")
    for key, value in trace.metadata.items():
        handle.write(f"meta {_quote(key)} {_quote(value)}\n")

    handle.write("[dict]\n")
    for line in dictionary.to_lines():
        handle.write(line + "\n")

    handle.write("[records]\n")
    for state in trace.states:
        handle.write(
            f"S {state.rank} {float(state.t_start)!r} {float(state.t_end)!r} "
            f"{dictionary.state_id(state.kind.value)} {_quote(state.label)}\n"
        )
    for probe in trace.instrumentation:
        handle.write(
            f"I {probe.rank} {float(probe.time)!r} {probe.marker} "
            f"{_quote(probe.mpi_call)} {_format_counters(probe.counters, dictionary)}\n"
        )
    for sample in trace.samples:
        if sample.frames:
            frames = "|".join(
                f"{_quote(routine)}@{_quote(path)}@{line}"
                for routine, path, line in sample.frames
            )
        else:
            frames = "-"
        handle.write(
            f"P {sample.rank} {float(sample.time)!r} "
            f"{_format_counters(sample.counters, dictionary)} {frames}\n"
        )
