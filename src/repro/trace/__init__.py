"""Paraver-like trace format.

The tracer (:mod:`repro.runtime`) emits three record kinds, mirroring what
Extrae writes for the folding toolchain:

* :class:`~repro.trace.records.StateRecord` — a rank is computing or inside
  a communication call over an interval;
* :class:`~repro.trace.records.InstrumentationRecord` — a minimal
  instrumentation probe fired (communication enter/exit) carrying the
  accumulated hardware counters at that instant;
* :class:`~repro.trace.records.SampleRecord` — a coarse-grain sampler tick
  carrying accumulated counters plus the captured call stack.

Traces can be kept in memory (:class:`~repro.trace.records.Trace`), written
to and read back from a line-oriented text format
(:mod:`repro.trace.writer`, :mod:`repro.trace.reader`) with an event
dictionary sidecar (:mod:`repro.trace.pcf`), merged across ranks
(:mod:`repro.trace.merge`), and summarized (:mod:`repro.trace.stats`).
"""

from repro.trace.records import (
    InstrumentationRecord,
    SampleRecord,
    StateKind,
    StateRecord,
    Trace,
)
from repro.trace.pcf import EventDictionary
from repro.trace.writer import dump_trace_text, write_trace
from repro.trace.reader import (
    ReadPolicy,
    SalvageReport,
    load_trace_text,
    read_trace,
    read_trace_salvaged,
    salvage_trace_text,
)
from repro.trace.merge import merge_traces
from repro.trace.trim import trim_trace
from repro.trace.stats import TraceStats, compute_stats

__all__ = [
    "StateKind",
    "StateRecord",
    "InstrumentationRecord",
    "SampleRecord",
    "Trace",
    "EventDictionary",
    "write_trace",
    "dump_trace_text",
    "read_trace",
    "read_trace_salvaged",
    "load_trace_text",
    "salvage_trace_text",
    "ReadPolicy",
    "SalvageReport",
    "merge_traces",
    "trim_trace",
    "TraceStats",
    "compute_stats",
]
