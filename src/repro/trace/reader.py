"""Trace deserialization — inverse of :mod:`repro.trace.writer`.

The reader is strict: unknown record tags, missing sections, ids absent
from the dictionary, and malformed fields all raise
:class:`~repro.errors.TraceFormatError` with the offending line number.
"""

from __future__ import annotations

import io
from typing import IO, Dict, List, Tuple, Union
from urllib.parse import unquote

from repro.errors import TraceFormatError
from repro.trace.pcf import EventDictionary
from repro.trace.records import (
    InstrumentationRecord,
    SampleRecord,
    StateKind,
    StateRecord,
    Trace,
)
from repro.trace.writer import FORMAT_HEADER

__all__ = ["read_trace", "load_trace_text"]


def read_trace(source: Union[str, IO[str]]) -> Trace:
    """Read a trace from a path or text stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def load_trace_text(text: str) -> Trace:
    """Parse a trace from a string (round-trip test helper)."""
    return _read(io.StringIO(text))


def _unquote(token: str) -> str:
    return "" if token == "-" else unquote(token)


def _parse_counters(token: str, dictionary: EventDictionary, lineno: int) -> Dict[str, float]:
    if token == "-":
        return {}
    counters: Dict[str, float] = {}
    for item in token.split(","):
        if "=" not in item:
            raise TraceFormatError(f"line {lineno}: malformed counter item {item!r}")
        cid_text, value_text = item.split("=", 1)
        try:
            cid = int(cid_text)
            value = float(value_text)
        except ValueError:
            raise TraceFormatError(
                f"line {lineno}: malformed counter item {item!r}"
            ) from None
        counters[dictionary.counter_name(cid)] = value
    return counters


def _parse_frames(token: str, lineno: int) -> Tuple[Tuple[str, str, int], ...]:
    if token == "-":
        return ()
    frames: List[Tuple[str, str, int]] = []
    for item in token.split("|"):
        parts = item.split("@")
        if len(parts) != 3:
            raise TraceFormatError(f"line {lineno}: malformed frame {item!r}")
        routine, path, line_text = parts
        try:
            line = int(line_text)
        except ValueError:
            raise TraceFormatError(f"line {lineno}: malformed frame line {item!r}") from None
        frames.append((_unquote(routine), _unquote(path), line))
    return tuple(frames)


def _read(handle: IO[str]) -> Trace:
    lines = handle.read().splitlines()
    if not lines or lines[0].strip() != FORMAT_HEADER:
        raise TraceFormatError(
            f"missing trace header; expected {FORMAT_HEADER!r}, "
            f"got {lines[0]!r}" if lines else "empty trace file"
        )

    app_name = ""
    n_ranks = 0
    metadata: Dict[str, str] = {}
    dict_lines: List[str] = []
    record_lines: List[Tuple[int, str]] = []
    section = "header"
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line == "[dict]":
            section = "dict"
            continue
        if line == "[records]":
            section = "records"
            continue
        if section == "header":
            parts = line.split()
            if parts[0] == "app" and len(parts) == 2:
                app_name = _unquote(parts[1])
            elif parts[0] == "ranks" and len(parts) == 2:
                n_ranks = int(parts[1])
            elif parts[0] == "meta" and len(parts) == 3:
                metadata[_unquote(parts[1])] = _unquote(parts[2])
            else:
                raise TraceFormatError(f"line {lineno}: unknown header line {raw!r}")
        elif section == "dict":
            dict_lines.append(line)
        else:
            record_lines.append((lineno, line))

    if n_ranks < 1:
        raise TraceFormatError("trace header missing a valid 'ranks' line")
    dictionary = EventDictionary.from_lines(dict_lines)
    trace = Trace(n_ranks=n_ranks, app_name=app_name, metadata=metadata)

    for lineno, line in record_lines:
        tag, rest = line[0], line[2:] if len(line) > 2 else ""
        fields = rest.split()
        try:
            if tag == "S":
                rank, t0, t1, sid, label = fields
                trace.add_state(
                    StateRecord(
                        rank=int(rank),
                        t_start=float(t0),
                        t_end=float(t1),
                        kind=StateKind(dictionary.state_name(int(sid))),
                        label=_unquote(label),
                    )
                )
            elif tag == "I":
                rank, t, marker, call, counters = fields
                trace.add_instrumentation(
                    InstrumentationRecord(
                        rank=int(rank),
                        time=float(t),
                        marker=marker,
                        mpi_call=_unquote(call),
                        counters=_parse_counters(counters, dictionary, lineno),
                    )
                )
            elif tag == "P":
                rank, t, counters, frames = fields
                trace.add_sample(
                    SampleRecord(
                        rank=int(rank),
                        time=float(t),
                        counters=_parse_counters(counters, dictionary, lineno),
                        frames=_parse_frames(frames, lineno),
                    )
                )
            else:
                raise TraceFormatError(f"line {lineno}: unknown record tag {tag!r}")
        except TraceFormatError:
            raise
        except (ValueError, KeyError) as exc:
            raise TraceFormatError(f"line {lineno}: malformed record {line!r}: {exc}") from exc
    return trace
