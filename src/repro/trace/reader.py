"""Trace deserialization — inverse of :mod:`repro.trace.writer`.

Two read policies (:class:`ReadPolicy`):

* **STRICT** (default) — unknown record tags, missing sections, ids absent
  from the dictionary, malformed fields, and non-finite/negative numbers
  all raise :class:`~repro.errors.TraceFormatError` with the offending
  line number.  A strict read that returns is a guarantee the file is
  exactly what the writer produced.
* **SALVAGE** — damaged lines are *dropped, counted, and reported* instead
  of aborting the read: production traces arrive truncated, bit-rotted and
  clock-skewed, and one bad byte must not cost the other 99.9% of the
  records.  :func:`read_trace_salvaged` returns the recovered
  :class:`~repro.trace.records.Trace` together with a
  :class:`SalvageReport` itemizing every drop by reason.  Only when
  *nothing* is recoverable (no header, or no usable ``ranks`` and no valid
  records) does salvage raise :class:`~repro.errors.SalvageError`.
"""

from __future__ import annotations

import enum
import io
import math
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple, Union
from urllib.parse import unquote

from repro.errors import SalvageError, TraceFormatError
from repro.observability.context import counter as _metric_counter
from repro.observability.context import span as _span
from repro.trace.pcf import EventDictionary
from repro.trace.records import (
    InstrumentationRecord,
    SampleRecord,
    StateKind,
    StateRecord,
    Trace,
)
from repro.trace.writer import FORMAT_HEADER

__all__ = [
    "ReadPolicy",
    "SalvageReport",
    "read_trace",
    "read_trace_salvaged",
    "load_trace_text",
    "salvage_trace_text",
]


class ReadPolicy(enum.Enum):
    """How the reader treats damaged input."""

    STRICT = "strict"
    SALVAGE = "salvage"


@dataclass
class SalvageReport:
    """What a salvage-mode read dropped, and why.

    ``reasons`` counts drop events by category (``malformed-record``,
    ``unknown-tag``, ``unknown-id``, ``bad-timestamp``, ``rank-out-of-range``,
    ``duplicate-record``, ``non-finite-counter``, ``header``,
    ``dictionary``).  ``first_bad``/``last_bad`` pin the offending region
    of the file for a human with an editor.  ``non-finite-counter`` drops
    remove a single counter entry, not the whole record, so they are
    excluded from ``n_lines_dropped``.
    """

    n_record_lines: int = 0
    n_records_kept: int = 0
    n_lines_dropped: int = 0
    n_counters_dropped: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)
    first_bad: Optional[Tuple[int, str]] = None
    last_bad: Optional[Tuple[int, str]] = None
    inferred_ranks: bool = False

    def _note(self, lineno: int, line: str, reason: str) -> None:
        self.reasons[reason] = self.reasons.get(reason, 0) + 1
        clipped = line if len(line) <= 120 else line[:117] + "..."
        if self.first_bad is None:
            self.first_bad = (lineno, clipped)
        self.last_bad = (lineno, clipped)

    def drop_line(self, lineno: int, line: str, reason: str) -> None:
        """Record one whole-line drop."""
        self.n_lines_dropped += 1
        self._note(lineno, line, reason)

    def drop_counter(self, lineno: int, item: str) -> None:
        """Record one non-finite counter entry removed from a kept record."""
        self.n_counters_dropped += 1
        self._note(lineno, item, "non-finite-counter")

    @property
    def clean(self) -> bool:
        """True when nothing was dropped or inferred."""
        return (
            self.n_lines_dropped == 0
            and self.n_counters_dropped == 0
            and not self.inferred_ranks
        )

    @property
    def drop_fraction(self) -> float:
        """Fraction of record lines dropped."""
        if self.n_record_lines == 0:
            return 0.0
        return self.n_lines_dropped / self.n_record_lines

    def summary(self) -> str:
        """Human-readable multi-line rendering (CLI output)."""
        if self.clean:
            return f"salvage: clean — all {self.n_records_kept} records read"
        lines = [
            f"salvage: kept {self.n_records_kept}/{self.n_record_lines} records "
            f"({self.n_lines_dropped} lines dropped, "
            f"{self.n_counters_dropped} counter entries dropped)"
        ]
        for reason in sorted(self.reasons):
            lines.append(f"  {reason:<22} {self.reasons[reason]}")
        if self.first_bad is not None:
            lines.append(f"  first bad line {self.first_bad[0]}: {self.first_bad[1]!r}")
        if self.last_bad is not None and self.last_bad != self.first_bad:
            lines.append(f"  last bad line  {self.last_bad[0]}: {self.last_bad[1]!r}")
        if self.inferred_ranks:
            lines.append("  rank count inferred from records (header damaged)")
        return "\n".join(lines)


def read_trace(
    source: Union[str, IO[str]], policy: ReadPolicy = ReadPolicy.STRICT
) -> Trace:
    """Read a trace from a path or text stream.

    With ``policy=ReadPolicy.SALVAGE`` damaged lines are skipped silently;
    use :func:`read_trace_salvaged` when the drop report matters (it
    almost always does).
    """
    trace, _report = _read_source(source, policy)
    return trace


def read_trace_salvaged(source: Union[str, IO[str]]) -> Tuple[Trace, SalvageReport]:
    """Salvage-read a trace, returning what survived plus the drop report."""
    return _read_source(source, ReadPolicy.SALVAGE)


def load_trace_text(text: str, policy: ReadPolicy = ReadPolicy.STRICT) -> Trace:
    """Parse a trace from a string (round-trip test helper)."""
    trace, _report = _read(io.StringIO(text), policy)
    return trace


def salvage_trace_text(text: str) -> Tuple[Trace, SalvageReport]:
    """Salvage-parse a trace from a string, with the drop report."""
    return _read(io.StringIO(text), ReadPolicy.SALVAGE)


def _read_source(
    source: Union[str, IO[str]], policy: ReadPolicy
) -> Tuple[Trace, SalvageReport]:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle, policy)
    return _read(source, policy)


def _unquote(token: str) -> str:
    return "" if token == "-" else unquote(token)


def _fail(lineno: int, message: str, reason: str) -> None:
    """Raise a :class:`TraceFormatError` tagged with a salvage reason."""
    error = TraceFormatError(f"line {lineno}: {message}")
    error.reason = reason  # type: ignore[attr-defined]
    raise error


def _parse_counters(
    token: str,
    dictionary: EventDictionary,
    lineno: int,
    policy: ReadPolicy,
    report: SalvageReport,
) -> Dict[str, float]:
    if token == "-":
        return {}
    counters: Dict[str, float] = {}
    for item in token.split(","):
        if "=" not in item:
            _fail(lineno, f"malformed counter item {item!r}", "malformed-record")
        cid_text, value_text = item.split("=", 1)
        try:
            cid = int(cid_text)
            value = float(value_text)
        except ValueError:
            _fail(lineno, f"malformed counter item {item!r}", "malformed-record")
        if not math.isfinite(value):
            # A failed PMU read: drop the entry in salvage (the record's
            # other counters are still good), refuse the file in strict.
            if policy is ReadPolicy.STRICT:
                _fail(
                    lineno, f"non-finite counter value {item!r}", "non-finite-counter"
                )
            report.drop_counter(lineno, item)
            continue
        try:
            name = dictionary.counter_name(cid)
        except TraceFormatError:
            _fail(lineno, f"counter id {cid} not in event dictionary", "unknown-id")
        counters[name] = value
    return counters


def _parse_frames(token: str, lineno: int) -> Tuple[Tuple[str, str, int], ...]:
    if token == "-":
        return ()
    frames: List[Tuple[str, str, int]] = []
    for item in token.split("|"):
        parts = item.split("@")
        if len(parts) != 3:
            _fail(lineno, f"malformed frame {item!r}", "malformed-record")
        routine, path, line_text = parts
        try:
            line = int(line_text)
        except ValueError:
            _fail(lineno, f"malformed frame line {item!r}", "malformed-record")
        frames.append((_unquote(routine), _unquote(path), line))
    return tuple(frames)


def _parse_time(text: str, lineno: int, what: str = "timestamp") -> float:
    value = float(text)
    if not math.isfinite(value) or value < 0.0:
        _fail(lineno, f"{what} must be finite and >= 0, got {text!r}", "bad-timestamp")
    return value


def _parse_record(
    tag: str,
    fields: List[str],
    dictionary: EventDictionary,
    lineno: int,
    policy: ReadPolicy,
    report: SalvageReport,
):
    """Parse one record line into a typed record, or raise (tagged)."""
    if tag == "S":
        rank, t0, t1, sid, label = fields
        try:
            kind = StateKind(dictionary.state_name(int(sid)))
        except TraceFormatError:
            _fail(lineno, f"state id {sid} not in event dictionary", "unknown-id")
        return StateRecord(
            rank=int(rank),
            t_start=_parse_time(t0, lineno, "state start"),
            t_end=_parse_time(t1, lineno, "state end"),
            kind=kind,
            label=_unquote(label),
        )
    if tag == "I":
        rank, t, marker, call, counters = fields
        return InstrumentationRecord(
            rank=int(rank),
            time=_parse_time(t, lineno),
            marker=marker,
            mpi_call=_unquote(call),
            counters=_parse_counters(counters, dictionary, lineno, policy, report),
        )
    if tag == "P":
        rank, t, counters, frames = fields
        return SampleRecord(
            rank=int(rank),
            time=_parse_time(t, lineno),
            counters=_parse_counters(counters, dictionary, lineno, policy, report),
            frames=_parse_frames(frames, lineno),
        )
    _fail(lineno, f"unknown record tag {tag!r}", "unknown-tag")


def _salvage_dictionary(
    dict_lines: List[Tuple[int, str]], report: SalvageReport
) -> EventDictionary:
    """Parse the dictionary keeping every line that parses in context.

    Quadratic in the dictionary size, which is tens of lines — the price
    of reusing :meth:`EventDictionary.from_lines` as the single source of
    parsing truth.
    """
    accepted: List[str] = []
    for lineno, line in dict_lines:
        try:
            EventDictionary.from_lines(accepted + [line])
        except TraceFormatError:
            report.drop_line(lineno, line, "dictionary")
        else:
            accepted.append(line)
    return EventDictionary.from_lines(accepted)


def _read(handle: IO[str], policy: ReadPolicy) -> Tuple[Trace, SalvageReport]:
    with _span("read_trace", policy=policy.value):
        trace, report = _read_impl(handle, policy)
    _metric_counter("read.records_kept").inc(trace.n_records)
    _metric_counter("read.lines_dropped").inc(report.n_lines_dropped)
    return trace, report


def _read_impl(handle: IO[str], policy: ReadPolicy) -> Tuple[Trace, SalvageReport]:
    salvage = policy is ReadPolicy.SALVAGE
    report = SalvageReport()
    lines = handle.read().splitlines()
    if not lines or lines[0].strip() != FORMAT_HEADER:
        message = (
            f"missing trace header; expected {FORMAT_HEADER!r}, got {lines[0]!r}"
            if lines
            else "empty trace file"
        )
        # No magic header means this is not a trace at any damage level.
        raise SalvageError(message) if salvage else TraceFormatError(message)

    app_name = ""
    n_ranks = 0
    metadata: Dict[str, str] = {}
    dict_lines: List[Tuple[int, str]] = []
    record_lines: List[Tuple[int, str]] = []
    section = "header"
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line == "[dict]":
            section = "dict"
            continue
        if line == "[records]":
            section = "records"
            continue
        if section == "header":
            parts = line.split()
            if parts[0] == "app" and len(parts) == 2:
                app_name = _unquote(parts[1])
            elif parts[0] == "ranks" and len(parts) == 2:
                try:
                    n_ranks = int(parts[1])
                except ValueError:
                    if not salvage:
                        raise TraceFormatError(
                            f"line {lineno}: malformed ranks line {raw!r}"
                        ) from None
                    report.drop_line(lineno, line, "header")
            elif parts[0] == "meta" and len(parts) == 3:
                metadata[_unquote(parts[1])] = _unquote(parts[2])
            elif salvage:
                report.drop_line(lineno, line, "header")
            else:
                raise TraceFormatError(f"line {lineno}: unknown header line {raw!r}")
        elif section == "dict":
            dict_lines.append((lineno, line))
        else:
            record_lines.append((lineno, line))

    if not salvage and n_ranks < 1:
        raise TraceFormatError("trace header missing a valid 'ranks' line")

    if salvage:
        dictionary = _salvage_dictionary(dict_lines, report)
    else:
        dictionary = EventDictionary.from_lines([line for _, line in dict_lines])

    report.n_record_lines = len(record_lines)
    records: List[Tuple[int, str, object]] = []
    seen_lines: set = set()
    for lineno, line in record_lines:
        tag, rest = line[0], line[2:] if len(line) > 2 else ""
        fields = rest.split()
        try:
            record = _parse_record(tag, fields, dictionary, lineno, policy, report)
        except TraceFormatError as exc:
            if not salvage:
                raise
            report.drop_line(lineno, line, getattr(exc, "reason", "malformed-record"))
            continue
        except (ValueError, KeyError) as exc:
            if not salvage:
                raise TraceFormatError(
                    f"line {lineno}: malformed record {line!r}: {exc}"
                ) from exc
            report.drop_line(lineno, line, "malformed-record")
            continue
        if salvage:
            # Exact duplicate lines are retried writes; a duplicated probe
            # would desynchronize burst pairing, so dedupe all tags.
            if line in seen_lines:
                report.drop_line(lineno, line, "duplicate-record")
                continue
            seen_lines.add(line)
        records.append((lineno, line, record))

    if n_ranks < 1:
        # Damaged header: infer the rank count from the surviving records.
        if not records:
            raise SalvageError(
                "trace has no usable 'ranks' header and no readable records"
            )
        n_ranks = max(record.rank for _, _, record in records) + 1
        report.inferred_ranks = True

    trace = Trace(n_ranks=n_ranks, app_name=app_name, metadata=metadata)
    for lineno, line, record in records:
        try:
            if isinstance(record, StateRecord):
                trace.add_state(record)
            elif isinstance(record, InstrumentationRecord):
                trace.add_instrumentation(record)
            else:
                trace.add_sample(record)
        except TraceFormatError:
            if not salvage:
                raise
            report.drop_line(lineno, line, "rank-out-of-range")
    report.n_records_kept = trace.n_records
    return trace, report
