"""Trace summary statistics.

Quick structural health checks used by tests and by the analysis pipeline's
preflight: record counts, sampling cadence actually achieved, compute/comm
time split, and per-rank balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.records import StateKind, Trace

__all__ = ["TraceStats", "compute_stats"]


@dataclass(frozen=True)
class TraceStats:
    """Aggregate numbers describing one trace."""

    n_ranks: int
    n_states: int
    n_probes: int
    n_samples: int
    duration: float
    compute_time_total: float
    comm_time_total: float
    samples_per_second: float
    mean_sample_period: float
    samples_in_mpi_fraction: float
    per_rank_compute_time: Dict[int, float]

    @property
    def compute_fraction(self) -> float:
        """Fraction of total state time spent computing."""
        total = self.compute_time_total + self.comm_time_total
        return self.compute_time_total / total if total > 0 else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """Mean rank compute time / max rank compute time (1.0 = balanced)."""
        if not self.per_rank_compute_time:
            return 0.0
        values = np.array(list(self.per_rank_compute_time.values()))
        peak = values.max()
        return float(values.mean() / peak) if peak > 0 else 0.0


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    if trace.n_records == 0:
        raise TraceFormatError("cannot summarize an empty trace")

    compute_total = 0.0
    comm_total = 0.0
    per_rank: Dict[int, float] = {r: 0.0 for r in range(trace.n_ranks)}
    for state in trace.states:
        if state.kind is StateKind.COMPUTE:
            compute_total += state.duration
            per_rank[state.rank] += state.duration
        else:
            comm_total += state.duration

    duration = trace.duration
    n_samples = len(trace.samples)
    in_mpi = sum(1 for s in trace.samples if s.in_mpi)

    periods: List[float] = []
    for rank in range(trace.n_ranks):
        times = [s.time for s in trace.samples_of(rank)]
        if len(times) >= 2:
            periods.extend(np.diff(times).tolist())
    mean_period = float(np.mean(periods)) if periods else 0.0

    return TraceStats(
        n_ranks=trace.n_ranks,
        n_states=len(trace.states),
        n_probes=len(trace.instrumentation),
        n_samples=n_samples,
        duration=duration,
        compute_time_total=compute_total,
        comm_time_total=comm_total,
        samples_per_second=(n_samples / duration / trace.n_ranks) if duration > 0 else 0.0,
        mean_sample_period=mean_period,
        samples_in_mpi_fraction=(in_mpi / n_samples) if n_samples else 0.0,
        per_rank_compute_time=per_rank,
    )
