"""Trace record types and the in-memory :class:`Trace` container.

Records are plain frozen dataclasses ordered by ``(time, rank)``.  Call
stacks inside :class:`SampleRecord` are stored as tuples of
``(routine_name, file_path, line)`` triples rather than live
:class:`~repro.source.callpath.CallPath` objects, so a trace read back from
disk is identical to one kept in memory (the analysis side only ever needs
the symbolic frames, exactly like a real tracer resolving addresses through
debug info).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TraceFormatError
from repro.source.callpath import CallPath

__all__ = [
    "StateKind",
    "FrameTriple",
    "StateRecord",
    "InstrumentationRecord",
    "SampleRecord",
    "Trace",
    "callpath_to_frames",
]

#: ``(routine_name, file_path, line)`` — the serialized form of one frame.
FrameTriple = Tuple[str, str, int]


def callpath_to_frames(callpath: Optional[CallPath]) -> Tuple[FrameTriple, ...]:
    """Flatten a live call path into serializable frame triples."""
    if callpath is None:
        return ()
    return tuple(
        (f.routine.name, f.routine.file.path, f.line) for f in callpath.frames
    )


class StateKind(enum.Enum):
    """What a rank is doing during a state interval."""

    COMPUTE = "compute"
    COMM = "comm"


@dataclass(frozen=True)
class StateRecord:
    """Rank ``rank`` is in state ``kind`` during ``[t_start, t_end]``.

    ``label`` carries the MPI call name for COMM states; it is empty for
    COMPUTE states (the tracer does not know kernel identities — recovering
    them is the clustering stage's job).
    """

    rank: int
    t_start: float
    t_end: float
    kind: StateKind
    label: str = ""

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise TraceFormatError(f"negative rank: {self.rank}")
        if not self.t_end >= self.t_start:
            raise TraceFormatError(
                f"state interval inverted: [{self.t_start}, {self.t_end}]"
            )

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.t_end - self.t_start


@dataclass(frozen=True)
class InstrumentationRecord:
    """A minimal-instrumentation probe: comm enter/exit + counters.

    ``marker`` is ``"comm_enter"`` or ``"comm_exit"``; ``counters`` maps
    counter names to values accumulated since the rank started.
    """

    rank: int
    time: float
    marker: str
    mpi_call: str
    counters: Mapping[str, float]

    VALID_MARKERS = ("comm_enter", "comm_exit")

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise TraceFormatError(f"negative rank: {self.rank}")
        if self.marker not in self.VALID_MARKERS:
            raise TraceFormatError(
                f"marker must be one of {self.VALID_MARKERS}, got {self.marker!r}"
            )
        for name, value in self.counters.items():
            if value < 0:
                raise TraceFormatError(f"negative counter {name}={value} at t={self.time}")


@dataclass(frozen=True)
class SampleRecord:
    """A coarse-grain sampler tick: accumulated counters + call stack.

    ``frames`` is empty when the sample landed inside a communication call
    (the unwinder stops at the MPI library boundary).
    """

    rank: int
    time: float
    counters: Mapping[str, float]
    frames: Tuple[FrameTriple, ...] = ()

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise TraceFormatError(f"negative rank: {self.rank}")
        for name, value in self.counters.items():
            if value < 0:
                raise TraceFormatError(f"negative counter {name}={value} at t={self.time}")

    @property
    def leaf_frame(self) -> Optional[FrameTriple]:
        """Innermost frame, or ``None`` for in-MPI samples."""
        return self.frames[-1] if self.frames else None

    @property
    def in_mpi(self) -> bool:
        """Whether the sample landed inside a communication call."""
        return not self.frames


@dataclass
class Trace:
    """In-memory trace: all records of one run, plus run metadata."""

    n_ranks: int
    app_name: str = ""
    states: List[StateRecord] = field(default_factory=list)
    instrumentation: List[InstrumentationRecord] = field(default_factory=list)
    samples: List[SampleRecord] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise TraceFormatError(f"n_ranks must be >= 1, got {self.n_ranks}")

    # ------------------------------------------------------------------
    # mutation (used by the tracer)
    # ------------------------------------------------------------------
    def add_state(self, record: StateRecord) -> None:
        """Append a state record (rank must be in range)."""
        self._check_rank(record.rank)
        self.states.append(record)

    def add_instrumentation(self, record: InstrumentationRecord) -> None:
        """Append an instrumentation record."""
        self._check_rank(record.rank)
        self.instrumentation.append(record)

    def add_sample(self, record: SampleRecord) -> None:
        """Append a sample record."""
        self._check_rank(record.rank)
        self.samples.append(record)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise TraceFormatError(f"rank {rank} out of range [0, {self.n_ranks})")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def sort(self) -> None:
        """Sort every record list by ``(time, rank)`` in place."""
        self.states.sort(key=lambda r: (r.t_start, r.rank))
        self.instrumentation.sort(key=lambda r: (r.time, r.rank))
        self.samples.sort(key=lambda r: (r.time, r.rank))

    def states_of(self, rank: int) -> List[StateRecord]:
        """State records of one rank, in time order."""
        self._check_rank(rank)
        return sorted(
            (r for r in self.states if r.rank == rank), key=lambda r: r.t_start
        )

    def instrumentation_of(self, rank: int) -> List[InstrumentationRecord]:
        """Instrumentation records of one rank, in time order."""
        self._check_rank(rank)
        return sorted(
            (r for r in self.instrumentation if r.rank == rank),
            key=lambda r: r.time,
        )

    def samples_of(self, rank: int) -> List[SampleRecord]:
        """Sample records of one rank, in time order."""
        self._check_rank(rank)
        return sorted((r for r in self.samples if r.rank == rank), key=lambda r: r.time)

    def counter_names(self) -> List[str]:
        """Counter names present in the trace (stable first-seen order)."""
        seen: List[str] = []
        for record in self.instrumentation:
            for name in record.counters:
                if name not in seen:
                    seen.append(name)
        for record in self.samples:
            for name in record.counters:
                if name not in seen:
                    seen.append(name)
        return seen

    @property
    def duration(self) -> float:
        """Time of the last record in the trace (0 when empty)."""
        candidates = [0.0]
        if self.states:
            candidates.append(max(r.t_end for r in self.states))
        if self.instrumentation:
            candidates.append(max(r.time for r in self.instrumentation))
        if self.samples:
            candidates.append(max(r.time for r in self.samples))
        return max(candidates)

    @property
    def n_records(self) -> int:
        """Total number of records of all kinds."""
        return len(self.states) + len(self.instrumentation) + len(self.samples)

    def __repr__(self) -> str:
        return (
            f"Trace(app={self.app_name!r}, ranks={self.n_ranks}, "
            f"states={len(self.states)}, probes={len(self.instrumentation)}, "
            f"samples={len(self.samples)})"
        )
