"""The folding analysis pipeline.

:class:`FoldingAnalyzer` is the library's main entry point: it consumes a
:class:`~repro.trace.records.Trace` (nothing else — no ground truth) and
produces an :class:`AnalysisResult` with, per detected cluster, the folded
counters, the fitted piece-wise linear models, the phases with their
metrics, and the phase-to-source attributions.

Clusters too small to fold meaningfully are reported as skipped with the
reason, never silently dropped.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.alignment import SPMDReport, spmd_score
from repro.clustering.bursts import BurstSet, extract_bursts
from repro.clustering.dbscan import (
    DBSCAN,
    DBSCANResult,
    estimate_eps,
    estimate_eps_quantile,
)
from repro.clustering.features import FeatureMatrix, build_features
from repro.clustering.refinement import refine_clusters
from repro.errors import (
    AnalysisError,
    ClusteringError,
    FittingError,
    FoldingError,
    PhaseError,
)
from repro.fitting.pwlr import PWLRConfig
from repro.folding.callstack import FoldedCallstacks, fold_callstacks
from repro.folding.filtering import (
    FilterReport,
    clip_to_unit_range,
    enforce_instance_monotonicity,
)
from repro.folding.fold import FoldedCounter, fold_cluster
from repro.folding.instances import ClusterInstances, select_instances
from repro.folding.reconstruct import Reconstruction
from repro.observability.context import DISABLED, Observability, current
from repro.observability.context import counter as _metric_counter
from repro.observability.context import span as _span
from repro.observability.spans import SpanRecord
from repro.observability.logs import progress
from repro.observability.spans import Profile
from repro.phases.detect import PhaseSet, detect_phases
from repro.phases.mapping import PhaseSourceAttribution, map_phases_to_source
from repro.resilience.diagnostics import Diagnostics
from repro.trace.reader import SalvageReport
from repro.trace.records import Trace
from repro.trace.stats import TraceStats, compute_stats

__all__ = ["AnalyzerConfig", "ClusterAnalysis", "AnalysisResult", "FoldingAnalyzer"]


@dataclass(frozen=True)
class AnalyzerConfig:
    """Configuration of the full pipeline.

    ``counters=None`` folds every counter present in the trace.  ``eps=None``
    estimates the DBSCAN radius with the k-dist heuristic.  The remaining
    knobs expose the stages' parameters under their own names; ablation
    benches toggle ``prune_outliers``/``monotonicity_filter``/``pwlr``.

    ``degraded_mode`` (default on) arms the per-stage fallback chains:
    degenerate eps estimation falls back to a pairwise-quantile radius, a
    failed PWLR fit falls back to kernel-smoother breakpoints, and a
    counter that fails folding or refitting is dropped with a record
    instead of sinking the cluster.  Every fallback lands in
    :attr:`AnalysisResult.diagnostics`.  Switch it off to restore
    fail-fast semantics (the first stage error aborts the cluster or the
    analysis).

    The observability knobs: ``profile`` (default on) lets the analysis
    record stage spans when an enabled
    :class:`~repro.observability.Observability` is active — set it False
    to force the no-op path even under an enabled context;
    ``progress_every`` emits a ``repro.progress`` log line every N-th
    cluster (1 = every cluster) so long runs stay visibly alive.

    ``n_jobs`` (default 1 = serial) fans the per-cluster analysis out
    over a process pool.  Results are deterministic and identical to the
    serial path: clusters are dispatched and collected in cluster-id
    order, each worker's diagnostics merge into the main record in that
    order, and each worker's stage spans attach under the corresponding
    ``cluster`` span of the main profile (worker span timestamps are
    relative to the worker process, so the hotspot *totals* are exact
    while cross-process timeline alignment is approximate).
    """

    counters: Optional[Tuple[str, ...]] = None
    pivot: str = "PAPI_TOT_INS"
    pwlr: PWLRConfig = field(default_factory=PWLRConfig)
    eps: Optional[float] = None
    min_pts: int = 8
    use_refinement: bool = False
    min_instances: int = 8
    min_cluster_fraction: float = 0.02
    prune_outliers: bool = True
    iqr_factor: float = 1.5
    range_tolerance: float = 0.02
    monotonicity_filter: bool = True
    min_folded_points: int = 16
    min_burst_duration_s: float = 0.0
    check_spmd: bool = False
    degraded_mode: bool = True
    profile: bool = True
    progress_every: int = 1
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.min_pts < 1:
            raise AnalysisError(f"min_pts must be >= 1: {self.min_pts}")
        if self.min_instances < 2:
            raise AnalysisError(f"min_instances must be >= 2: {self.min_instances}")
        if not 0.0 <= self.min_cluster_fraction < 1.0:
            raise AnalysisError(
                f"min_cluster_fraction must be in [0, 1): {self.min_cluster_fraction}"
            )
        if self.eps is not None and self.eps <= 0:
            raise AnalysisError(f"eps must be positive when given: {self.eps}")
        if self.iqr_factor <= 0:
            raise AnalysisError(f"iqr_factor must be > 0: {self.iqr_factor}")
        if self.min_folded_points < 2:
            raise AnalysisError(
                f"min_folded_points must be >= 2: {self.min_folded_points}"
            )
        if self.range_tolerance < 0:
            raise AnalysisError(
                f"range_tolerance must be >= 0: {self.range_tolerance}"
            )
        if not isinstance(self.profile, bool):
            raise AnalysisError(f"profile must be a bool: {self.profile!r}")
        if not isinstance(self.progress_every, int) or self.progress_every < 1:
            raise AnalysisError(
                f"progress_every must be an int >= 1: {self.progress_every!r}"
            )
        if not isinstance(self.n_jobs, int) or self.n_jobs < 1:
            raise AnalysisError(f"n_jobs must be an int >= 1: {self.n_jobs!r}")


@dataclass
class ClusterAnalysis:
    """Full analysis of one burst cluster."""

    cluster_id: int
    n_members: int
    time_share: float
    instances: ClusterInstances
    folded: Dict[str, FoldedCounter]
    filter_reports: List[FilterReport]
    phase_set: PhaseSet
    attributions: List[PhaseSourceAttribution]
    callstacks: Optional[FoldedCallstacks]
    reconstructions: Dict[str, Reconstruction]

    @property
    def n_phases(self) -> int:
        """Detected phase count."""
        return len(self.phase_set)


@dataclass
class AnalysisResult:
    """Everything the pipeline produced for one trace.

    ``spmd`` is populated when the analyzer was configured with
    ``check_spmd=True``: the sequence-alignment validation that the
    detected structure really is SPMD (a low score flags a clustering
    problem or a genuinely non-SPMD code).

    ``diagnostics`` records every salvage/fallback/skip decision the
    pipeline took — empty means the run was pristine; anything at
    DEGRADED or above means a fallback algorithm contributed to these
    numbers.

    ``profile`` is the stage-span tree of this run (wall/CPU/peak-RSS per
    pipeline stage) when the analysis ran under an enabled
    :class:`~repro.observability.Observability`; ``None`` otherwise.
    """

    app_name: str
    trace_stats: TraceStats
    bursts: BurstSet
    features: FeatureMatrix
    clustering: DBSCANResult
    clusters: List[ClusterAnalysis]
    skipped: Dict[int, str]
    spmd: Optional["SPMDReport"] = None
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    profile: Optional[Profile] = None

    @property
    def n_clusters_analyzed(self) -> int:
        """Clusters that made it through folding and fitting."""
        return len(self.clusters)

    def to_dict(self) -> Dict[str, object]:
        """Versioned JSON-able view (see :mod:`repro.store.serialize`).

        Everything reports, hints and cross-run diffs consume round-trips
        exactly; raw sample arrays are summarized, not stored.
        """
        from repro.store.serialize import result_to_dict  # avoid import cycle

        return result_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AnalysisResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        from repro.store.serialize import result_from_dict  # avoid import cycle

        return result_from_dict(data)

    def cluster(self, cluster_id: int) -> ClusterAnalysis:
        """Analysis of one cluster by id."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise AnalysisError(
            f"cluster {cluster_id} was not analyzed "
            f"(skipped: {self.skipped.get(cluster_id, 'not found')})"
        )

    def dominant_cluster(self) -> ClusterAnalysis:
        """The cluster covering the most compute time."""
        if not self.clusters:
            raise AnalysisError("no clusters were analyzed")
        return max(self.clusters, key=lambda c: c.time_share)


def _analyze_cluster_task(payload):
    """Process-pool worker: analyze one cluster in isolation.

    The payload carries the cluster's own bursts with synthetic uniform
    labels, so member selection inside ``_analyze_cluster`` reproduces the
    serial path exactly.  Returns ``(analysis, error, diagnostics,
    span_roots)``: tolerated per-cluster errors (folding/fitting/phase)
    come back as values for the parent to apply its degraded-mode policy;
    anything else propagates and aborts the pool, matching serial
    fail-fast semantics.  When the parent is profiling, the worker records
    its own span tree for the parent to graft under its ``cluster`` span.
    """
    cfg, bursts, cluster_id, counters, share, profiled = payload
    diagnostics = Diagnostics()
    labels = np.full(len(bursts), cluster_id, dtype=int)
    obs = Observability() if profiled else DISABLED
    analyzer = FoldingAnalyzer(cfg)
    analysis: Optional[ClusterAnalysis] = None
    error: Optional[Exception] = None
    try:
        with obs.activate():
            analysis = analyzer._analyze_cluster(
                bursts, labels, cluster_id, counters, share, diagnostics
            )
    except (FoldingError, FittingError, PhaseError) as exc:
        error = exc
    profile = obs.profile()
    roots: List[SpanRecord] = profile.roots if profile is not None else []
    return analysis, error, diagnostics, roots


class FoldingAnalyzer:
    """Trace → :class:`AnalysisResult` (the paper's mechanism end to end)."""

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()

    # ------------------------------------------------------------------
    def analyze(
        self, trace: Trace, salvage: Optional[SalvageReport] = None
    ) -> AnalysisResult:
        """Run the full pipeline on ``trace``.

        ``salvage`` is the :class:`~repro.trace.reader.SalvageReport` of a
        salvage-mode read, when there was one — its drop counts are folded
        into the result's diagnostics so the analysis carries the full
        damage history of its input.

        When an enabled :class:`~repro.observability.Observability` is
        active (and ``config.profile`` is True), the run records a span
        per stage and attaches the tree as :attr:`AnalysisResult.profile`.
        """
        # config.profile=False silences instrumentation for the whole
        # dynamic extent — activating DISABLED shadows any enabled outer
        # context for every layer below.
        obs = current() if self.config.profile else DISABLED
        with obs.activate():
            with obs.span("analyze", app=trace.app_name or "") as root:
                result = self._analyze_impl(trace, salvage)
        if root is not None:
            result.profile = Profile(roots=[root])
        return result

    def _analyze_impl(
        self, trace: Trace, salvage: Optional[SalvageReport]
    ) -> AnalysisResult:
        cfg = self.config
        diagnostics = Diagnostics()
        if salvage is not None:
            self._record_salvage(diagnostics, salvage)
        with _span("trace_stats"):
            stats = compute_stats(trace)
        progress(
            "%s: %d records / %d ranks, extracting bursts",
            trace.app_name or "trace",
            trace.n_records,
            trace.n_ranks,
        )
        mispaired: Dict[int, int] = {}
        bursts = extract_bursts(
            trace, min_duration=cfg.min_burst_duration_s, mispaired=mispaired
        )
        if mispaired:
            diagnostics.warning(
                "clustering",
                f"{sum(mispaired.values())} mispaired probe(s) skipped "
                f"during burst extraction (lost probe lines)",
                per_rank={int(r): int(n) for r, n in mispaired.items()},
            )
        if cfg.degraded_mode and salvage is not None and not salvage.clean:
            # Known-damaged input: corruption that still parses produces
            # physically absurd bursts — screen them before clustering.
            bursts = self._screen_bursts(bursts, diagnostics)

        counters = list(cfg.counters) if cfg.counters else bursts.counter_names
        if cfg.pivot not in counters:
            raise AnalysisError(
                f"pivot {cfg.pivot!r} not among analyzed counters {counters}"
            )

        bursts, features = self._build_features(bursts, diagnostics)
        progress("clustering %d bursts", len(bursts))
        with _span("clustering", n_bursts=len(bursts)):
            clustering = self._cluster(features, diagnostics)
        progress(
            "found %d cluster(s) (%.1f%% noise), analyzing",
            clustering.n_clusters,
            clustering.noise_fraction * 100.0,
        )

        durations = bursts.durations()
        total_compute = float(durations.sum())

        # In degraded mode a cluster that dies in *any* stage is skipped
        # with a diagnostic; fail-fast mode only tolerates folding
        # failures (the historical contract).
        cluster_errors = (
            (FoldingError, FittingError, PhaseError)
            if cfg.degraded_mode
            else FoldingError
        )
        clusters: List[ClusterAnalysis] = []
        skipped: Dict[int, str] = {}
        pending: List[Tuple[int, np.ndarray, float]] = []
        for cluster_id in range(clustering.n_clusters):
            members = clustering.members(cluster_id)
            share = float(durations[members].sum() / total_compute)
            if share < cfg.min_cluster_fraction:
                skipped[cluster_id] = (
                    f"covers {share:.1%} of compute time "
                    f"(< {cfg.min_cluster_fraction:.1%} threshold)"
                )
                diagnostics.info(
                    "analysis",
                    f"cluster {cluster_id} below time-share threshold",
                    cluster_id=cluster_id,
                    time_share=round(share, 4),
                )
                continue
            pending.append((cluster_id, members, share))

        if cfg.n_jobs > 1 and len(pending) > 1:
            self._analyze_clusters_parallel(
                bursts,
                counters,
                pending,
                clustering,
                cluster_errors,
                clusters,
                skipped,
                diagnostics,
            )
        else:
            for cluster_id, members, share in pending:
                if cluster_id % cfg.progress_every == 0:
                    progress(
                        "cluster %d/%d: %d members, %.1f%% of compute time",
                        cluster_id + 1,
                        clustering.n_clusters,
                        members.size,
                        share * 100.0,
                    )
                try:
                    with _span(
                        "cluster",
                        cluster_id=cluster_id,
                        n_members=int(members.size),
                    ):
                        clusters.append(
                            self._analyze_cluster(
                                bursts,
                                clustering.labels,
                                cluster_id,
                                counters,
                                share,
                                diagnostics,
                            )
                        )
                except cluster_errors as exc:
                    skipped[cluster_id] = str(exc)
                    diagnostics.error(
                        "analysis",
                        f"cluster {cluster_id} skipped: {exc}",
                        cluster_id=cluster_id,
                    )
        if not clusters:
            raise AnalysisError(
                f"no cluster could be analyzed; skipped: {skipped}"
            )
        spmd: Optional[SPMDReport] = None
        if cfg.check_spmd:
            with _span("spmd_check"):
                spmd = spmd_score(bursts, clustering.labels)
        _metric_counter("analysis.clusters_analyzed").inc(len(clusters))
        _metric_counter("analysis.clusters_skipped").inc(len(skipped))
        progress(
            "analysis complete: %d cluster(s) analyzed, %d skipped",
            len(clusters),
            len(skipped),
        )
        return AnalysisResult(
            app_name=trace.app_name,
            trace_stats=stats,
            bursts=bursts,
            features=features,
            clustering=clustering,
            clusters=clusters,
            skipped=skipped,
            spmd=spmd,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _record_salvage(diagnostics: Diagnostics, salvage: SalvageReport) -> None:
        """Fold a salvage-read report into the run diagnostics."""
        if salvage.clean:
            diagnostics.info(
                "read",
                "salvage read was clean",
                records=salvage.n_records_kept,
            )
            return
        for reason in sorted(salvage.reasons):
            diagnostics.warning(
                "read",
                f"salvage dropped {salvage.reasons[reason]} x {reason}",
                reason=reason,
                count=salvage.reasons[reason],
            )
        if salvage.inferred_ranks:
            diagnostics.degraded(
                "read",
                "rank count inferred from records (damaged header)",
            )

    def _screen_bursts(
        self, bursts: BurstSet, diagnostics: Diagnostics
    ) -> BurstSet:
        """Robust pre-screen of bursts from a known-damaged trace.

        A corrupted-but-parseable probe value (one flipped digit of a
        large cumulative counter) makes a burst's delta wrong by orders of
        magnitude.  Screen log-duration and log-pivot-rate with a generous
        MAD-based threshold — the scale divisor is floored so only
        physically absurd bursts are dropped, never mere workload
        variability.  Applied only when the salvage report says the input
        was damaged; a clean read never passes through here.
        """
        n = len(bursts)
        if n < self.config.min_pts:
            return bursts
        durations = bursts.durations()
        deltas = bursts.deltas_or_nan(self.config.pivot)
        keep = (
            np.isfinite(durations)
            & (durations > 0)
            & np.isfinite(deltas)
            & (deltas > 0)
        )
        safe_rate = np.where(keep, deltas, 1.0) / np.where(keep, durations, 1.0)
        for values in (durations, safe_rate):
            logs = np.log10(np.where(keep, values, 1.0))
            kept_logs = logs[keep]
            if kept_logs.size == 0:
                break
            median = float(np.median(kept_logs))
            mad = float(np.median(np.abs(kept_logs - median)))
            scale = max(1.4826 * mad, 0.15)  # >= ~1.4x before z moves
            keep &= np.abs(logs - median) / scale <= 6.0
        n_dropped = int(n - keep.sum())
        if n_dropped == 0:
            return bursts
        if int(keep.sum()) < self.config.min_pts:
            # Screening would leave too few bursts to cluster.  The
            # screen is abandoned and the known-absurd bursts stay in —
            # a decision the analyst must see, not a silent pass-through.
            diagnostics.degraded(
                "clustering",
                f"burst screening abandoned: only {int(keep.sum())} of {n} "
                f"burst(s) would survive (< min_pts={self.config.min_pts}); "
                f"implausible bursts kept",
                n_flagged=n_dropped,
                n_would_survive=int(keep.sum()),
                min_pts=self.config.min_pts,
            )
            return bursts
        _metric_counter("bursts.screened").inc(n_dropped)
        diagnostics.warning(
            "clustering",
            f"{n_dropped} physically implausible burst(s) screened out "
            f"of damaged trace",
            n_dropped=n_dropped,
            n_kept=int(keep.sum()),
        )
        return bursts.subset([int(i) for i in np.flatnonzero(keep)])

    def _build_features(
        self, bursts: BurstSet, diagnostics: Diagnostics
    ) -> Tuple[BurstSet, FeatureMatrix]:
        """Feature construction, with the degraded-mode burst guard.

        A salvaged trace can contain bursts whose probe counters were
        corrupted into parseable-but-wrong values (a bit flip turning an
        instruction count negative).  ``build_features`` rightly rejects
        them; in degraded mode we drop the inconsistent bursts, record the
        drop, and retry on the survivors rather than lose the trace.
        """
        try:
            return bursts, build_features(bursts)
        except ClusteringError:
            if not self.config.degraded_mode:
                raise
            deltas = bursts.deltas_or_nan("PAPI_TOT_INS")
            good = np.flatnonzero(np.isfinite(deltas) & (deltas > 0))
            if good.size == 0 or good.size == len(bursts):
                raise  # nothing to drop, or nothing would remain
            _metric_counter("features.bursts_dropped").inc(len(bursts) - good.size)
            diagnostics.warning(
                "clustering",
                f"{len(bursts) - good.size} inconsistent burst(s) dropped "
                f"before feature construction",
                n_dropped=int(len(bursts) - good.size),
                n_kept=int(good.size),
            )
            bursts = bursts.subset([int(i) for i in good])
            return bursts, build_features(bursts)

    def _cluster(
        self, features: FeatureMatrix, diagnostics: Diagnostics
    ) -> DBSCANResult:
        cfg = self.config
        if cfg.use_refinement:
            return refine_clusters(features.values, min_pts=cfg.min_pts)
        if cfg.eps is not None:
            # Caller pinned the radius: no fallback second-guesses it.
            return DBSCAN(eps=cfg.eps, min_pts=cfg.min_pts).fit(features.values)
        eps: Optional[float] = None
        try:
            eps = estimate_eps(features.values, k=cfg.min_pts)
            if eps <= 1e-8:
                raise ClusteringError(
                    f"k-dist eps estimate degenerate ({eps}); geometry has "
                    f"no usable k-th neighbor scale"
                )
        except ClusteringError as exc:
            if not cfg.degraded_mode:
                raise
            diagnostics.degraded(
                "clustering",
                "k-dist eps estimation failed; pairwise-quantile fallback used",
                error=str(exc),
            )
        if eps is not None and eps > 1e-8:
            result = DBSCAN(eps=eps, min_pts=cfg.min_pts).fit(features.values)
            if result.n_clusters > 0 or not cfg.degraded_mode:
                return result
            diagnostics.degraded(
                "clustering",
                "k-dist eps yielded zero clusters; "
                "retrying with pairwise-quantile fallback",
                eps=eps,
            )
        fallback_eps = estimate_eps_quantile(features.values)
        return DBSCAN(eps=fallback_eps, min_pts=cfg.min_pts).fit(features.values)

    def _analyze_clusters_parallel(
        self,
        bursts: BurstSet,
        counters: Sequence[str],
        pending: List[Tuple[int, np.ndarray, float]],
        clustering: DBSCANResult,
        cluster_errors,
        clusters: List[ClusterAnalysis],
        skipped: Dict[int, str],
        diagnostics: Diagnostics,
    ) -> None:
        """Fan ``_analyze_cluster`` out over a process pool.

        Deterministic by construction: clusters are submitted and
        collected in cluster-id order (``Executor.map`` preserves input
        order), so the appended analyses, skip records, and merged
        diagnostics match the serial path event for event.  Each worker
        receives only its cluster's bursts (with synthetic uniform
        labels), which keeps pickling traffic proportional to the work.
        """
        cfg = self.config
        profiled = cfg.profile and current().enabled
        payloads = [
            (
                cfg,
                bursts.subset([int(i) for i in members]),
                cluster_id,
                list(counters),
                share,
                profiled,
            )
            for cluster_id, members, share in pending
        ]
        n_workers = min(cfg.n_jobs, len(pending))
        with _span("cluster_pool", n_jobs=n_workers, n_clusters=len(pending)):
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                outcomes = list(pool.map(_analyze_cluster_task, payloads))
        for (cluster_id, members, share), outcome in zip(pending, outcomes):
            if cluster_id % cfg.progress_every == 0:
                progress(
                    "cluster %d/%d: %d members, %.1f%% of compute time",
                    cluster_id + 1,
                    clustering.n_clusters,
                    members.size,
                    share * 100.0,
                )
            analysis, error, worker_diag, worker_spans = outcome
            diagnostics.extend(worker_diag)
            with _span(
                "cluster",
                cluster_id=cluster_id,
                n_members=int(members.size),
                parallel=True,
            ) as rec:
                if rec is not None and worker_spans:
                    rec.children.extend(worker_spans)
            if error is not None:
                if not isinstance(error, cluster_errors):
                    raise error
                skipped[cluster_id] = str(error)
                diagnostics.error(
                    "analysis",
                    f"cluster {cluster_id} skipped: {error}",
                    cluster_id=cluster_id,
                )
            else:
                clusters.append(analysis)

    def _analyze_cluster(
        self,
        bursts: BurstSet,
        labels: np.ndarray,
        cluster_id: int,
        counters: Sequence[str],
        time_share: float,
        diagnostics: Diagnostics,
    ) -> ClusterAnalysis:
        cfg = self.config
        instances = select_instances(
            bursts,
            labels,
            cluster_id,
            prune_outliers=cfg.prune_outliers,
            iqr_factor=cfg.iqr_factor,
            min_instances=cfg.min_instances,
        )
        fold_drops: Dict[str, str] = {}
        folded = fold_cluster(
            instances,
            counters,
            min_points=cfg.min_folded_points,
            required=[cfg.pivot],
            drops=fold_drops,
        )
        for counter, reason in fold_drops.items():
            diagnostics.warning(
                "folding",
                f"counter {counter} dropped from cluster {cluster_id}: {reason}",
                cluster_id=cluster_id,
                counter=counter,
            )

        reports: List[FilterReport] = []
        with _span("filter", cluster_id=cluster_id, n_counters=len(folded)):
            for counter in list(folded):
                try:
                    fc, r_range = clip_to_unit_range(
                        folded[counter], cfg.range_tolerance
                    )
                    reports.append(r_range)
                    if cfg.monotonicity_filter:
                        fc, r_mono = enforce_instance_monotonicity(fc)
                        reports.append(r_mono)
                    folded[counter] = fc
                except FoldingError as exc:
                    if not cfg.degraded_mode or counter == cfg.pivot:
                        raise
                    del folded[counter]
                    diagnostics.warning(
                        "folding",
                        f"physical filters failed for {counter}; counter dropped",
                        cluster_id=cluster_id,
                        counter=counter,
                        error=str(exc),
                    )

        phase_set = detect_phases(
            folded,
            cluster_id=cluster_id,
            pivot=cfg.pivot,
            config=cfg.pwlr,
            diagnostics=diagnostics,
            allow_fallback=cfg.degraded_mode,
        )

        try:
            with _span("fold_callstacks", cluster_id=cluster_id):
                callstacks: Optional[FoldedCallstacks] = fold_callstacks(instances)
            attributions = map_phases_to_source(phase_set, callstacks)
        except FoldingError:
            # No stack samples in this cluster: phases stand unattributed.
            callstacks = None
            attributions = []
            diagnostics.info(
                "phases",
                f"cluster {cluster_id}: no stack samples, "
                f"phases stand unattributed",
                cluster_id=cluster_id,
            )

        reconstructions: Dict[str, Reconstruction] = {}
        with _span("reconstruct", cluster_id=cluster_id):
            for counter in folded:
                if counter not in phase_set.counter_models:
                    continue  # refit dropped it; already in diagnostics
                try:
                    reconstructions[counter] = Reconstruction.from_folded(
                        folded[counter], phase_set.counter_models[counter]
                    )
                except (FoldingError, FittingError) as exc:
                    if not cfg.degraded_mode:
                        raise
                    diagnostics.warning(
                        "phases",
                        f"reconstruction failed for {counter}",
                        cluster_id=cluster_id,
                        counter=counter,
                        error=str(exc),
                    )
        return ClusterAnalysis(
            cluster_id=cluster_id,
            n_members=int(np.sum(labels == cluster_id)),
            time_share=time_share,
            instances=instances,
            folded=folded,
            filter_reports=reports,
            phase_set=phase_set,
            attributions=attributions,
            callstacks=callstacks,
            reconstructions=reconstructions,
        )
