"""The folding analysis pipeline.

:class:`FoldingAnalyzer` is the library's main entry point: it consumes a
:class:`~repro.trace.records.Trace` (nothing else — no ground truth) and
produces an :class:`AnalysisResult` with, per detected cluster, the folded
counters, the fitted piece-wise linear models, the phases with their
metrics, and the phase-to-source attributions.

Clusters too small to fold meaningfully are reported as skipped with the
reason, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.alignment import SPMDReport, spmd_score
from repro.clustering.bursts import BurstSet, extract_bursts
from repro.clustering.dbscan import DBSCAN, DBSCANResult, estimate_eps
from repro.clustering.features import FeatureMatrix, build_features
from repro.clustering.refinement import refine_clusters
from repro.errors import AnalysisError, FoldingError
from repro.fitting.pwlr import PWLRConfig
from repro.folding.callstack import FoldedCallstacks, fold_callstacks
from repro.folding.filtering import (
    FilterReport,
    clip_to_unit_range,
    enforce_instance_monotonicity,
)
from repro.folding.fold import FoldedCounter, fold_cluster
from repro.folding.instances import ClusterInstances, select_instances
from repro.folding.reconstruct import Reconstruction
from repro.phases.detect import PhaseSet, detect_phases
from repro.phases.mapping import PhaseSourceAttribution, map_phases_to_source
from repro.trace.records import Trace
from repro.trace.stats import TraceStats, compute_stats

__all__ = ["AnalyzerConfig", "ClusterAnalysis", "AnalysisResult", "FoldingAnalyzer"]


@dataclass(frozen=True)
class AnalyzerConfig:
    """Configuration of the full pipeline.

    ``counters=None`` folds every counter present in the trace.  ``eps=None``
    estimates the DBSCAN radius with the k-dist heuristic.  The remaining
    knobs expose the stages' parameters under their own names; ablation
    benches toggle ``prune_outliers``/``monotonicity_filter``/``pwlr``.
    """

    counters: Optional[Tuple[str, ...]] = None
    pivot: str = "PAPI_TOT_INS"
    pwlr: PWLRConfig = field(default_factory=PWLRConfig)
    eps: Optional[float] = None
    min_pts: int = 8
    use_refinement: bool = False
    min_instances: int = 8
    min_cluster_fraction: float = 0.02
    prune_outliers: bool = True
    iqr_factor: float = 1.5
    range_tolerance: float = 0.02
    monotonicity_filter: bool = True
    min_folded_points: int = 16
    min_burst_duration_s: float = 0.0
    check_spmd: bool = False

    def __post_init__(self) -> None:
        if self.min_pts < 1:
            raise AnalysisError(f"min_pts must be >= 1: {self.min_pts}")
        if self.min_instances < 2:
            raise AnalysisError(f"min_instances must be >= 2: {self.min_instances}")
        if not 0.0 <= self.min_cluster_fraction < 1.0:
            raise AnalysisError(
                f"min_cluster_fraction must be in [0, 1): {self.min_cluster_fraction}"
            )
        if self.eps is not None and self.eps <= 0:
            raise AnalysisError(f"eps must be positive when given: {self.eps}")


@dataclass
class ClusterAnalysis:
    """Full analysis of one burst cluster."""

    cluster_id: int
    n_members: int
    time_share: float
    instances: ClusterInstances
    folded: Dict[str, FoldedCounter]
    filter_reports: List[FilterReport]
    phase_set: PhaseSet
    attributions: List[PhaseSourceAttribution]
    callstacks: Optional[FoldedCallstacks]
    reconstructions: Dict[str, Reconstruction]

    @property
    def n_phases(self) -> int:
        """Detected phase count."""
        return len(self.phase_set)


@dataclass
class AnalysisResult:
    """Everything the pipeline produced for one trace.

    ``spmd`` is populated when the analyzer was configured with
    ``check_spmd=True``: the sequence-alignment validation that the
    detected structure really is SPMD (a low score flags a clustering
    problem or a genuinely non-SPMD code).
    """

    app_name: str
    trace_stats: TraceStats
    bursts: BurstSet
    features: FeatureMatrix
    clustering: DBSCANResult
    clusters: List[ClusterAnalysis]
    skipped: Dict[int, str]
    spmd: Optional["SPMDReport"] = None

    @property
    def n_clusters_analyzed(self) -> int:
        """Clusters that made it through folding and fitting."""
        return len(self.clusters)

    def cluster(self, cluster_id: int) -> ClusterAnalysis:
        """Analysis of one cluster by id."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise AnalysisError(
            f"cluster {cluster_id} was not analyzed "
            f"(skipped: {self.skipped.get(cluster_id, 'not found')})"
        )

    def dominant_cluster(self) -> ClusterAnalysis:
        """The cluster covering the most compute time."""
        if not self.clusters:
            raise AnalysisError("no clusters were analyzed")
        return max(self.clusters, key=lambda c: c.time_share)


class FoldingAnalyzer:
    """Trace → :class:`AnalysisResult` (the paper's mechanism end to end)."""

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()

    # ------------------------------------------------------------------
    def analyze(self, trace: Trace) -> AnalysisResult:
        """Run the full pipeline on ``trace``."""
        cfg = self.config
        stats = compute_stats(trace)
        bursts = extract_bursts(trace, min_duration=cfg.min_burst_duration_s)

        counters = list(cfg.counters) if cfg.counters else bursts.counter_names
        if cfg.pivot not in counters:
            raise AnalysisError(
                f"pivot {cfg.pivot!r} not among analyzed counters {counters}"
            )

        features = build_features(bursts)
        clustering = self._cluster(features)

        durations = bursts.durations()
        total_compute = float(durations.sum())

        clusters: List[ClusterAnalysis] = []
        skipped: Dict[int, str] = {}
        for cluster_id in range(clustering.n_clusters):
            members = clustering.members(cluster_id)
            share = float(durations[members].sum() / total_compute)
            if share < cfg.min_cluster_fraction:
                skipped[cluster_id] = (
                    f"covers {share:.1%} of compute time "
                    f"(< {cfg.min_cluster_fraction:.1%} threshold)"
                )
                continue
            try:
                clusters.append(
                    self._analyze_cluster(
                        bursts, clustering.labels, cluster_id, counters, share
                    )
                )
            except FoldingError as exc:
                skipped[cluster_id] = str(exc)
        if not clusters:
            raise AnalysisError(
                f"no cluster could be analyzed; skipped: {skipped}"
            )
        spmd: Optional[SPMDReport] = None
        if cfg.check_spmd:
            spmd = spmd_score(bursts, clustering.labels)
        return AnalysisResult(
            app_name=trace.app_name,
            trace_stats=stats,
            bursts=bursts,
            features=features,
            clustering=clustering,
            clusters=clusters,
            skipped=skipped,
            spmd=spmd,
        )

    # ------------------------------------------------------------------
    def _cluster(self, features: FeatureMatrix) -> DBSCANResult:
        cfg = self.config
        if cfg.use_refinement:
            return refine_clusters(features.values, min_pts=cfg.min_pts)
        eps = cfg.eps if cfg.eps is not None else estimate_eps(
            features.values, k=cfg.min_pts
        )
        return DBSCAN(eps=eps, min_pts=cfg.min_pts).fit(features.values)

    def _analyze_cluster(
        self,
        bursts: BurstSet,
        labels: np.ndarray,
        cluster_id: int,
        counters: Sequence[str],
        time_share: float,
    ) -> ClusterAnalysis:
        cfg = self.config
        instances = select_instances(
            bursts,
            labels,
            cluster_id,
            prune_outliers=cfg.prune_outliers,
            iqr_factor=cfg.iqr_factor,
            min_instances=cfg.min_instances,
        )
        folded = fold_cluster(
            instances,
            counters,
            min_points=cfg.min_folded_points,
            required=[cfg.pivot],
        )

        reports: List[FilterReport] = []
        for counter in list(folded):
            fc, r_range = clip_to_unit_range(folded[counter], cfg.range_tolerance)
            reports.append(r_range)
            if cfg.monotonicity_filter:
                fc, r_mono = enforce_instance_monotonicity(fc)
                reports.append(r_mono)
            folded[counter] = fc

        phase_set = detect_phases(
            folded, cluster_id=cluster_id, pivot=cfg.pivot, config=cfg.pwlr
        )

        try:
            callstacks: Optional[FoldedCallstacks] = fold_callstacks(instances)
            attributions = map_phases_to_source(phase_set, callstacks)
        except FoldingError:
            # No stack samples in this cluster: phases stand unattributed.
            callstacks = None
            attributions = []

        reconstructions = {
            counter: Reconstruction.from_folded(
                folded[counter], phase_set.counter_models[counter]
            )
            for counter in folded
        }
        return ClusterAnalysis(
            cluster_id=cluster_id,
            n_members=int(np.sum(labels == cluster_id)),
            time_share=time_share,
            instances=instances,
            folded=folded,
            filter_reports=reports,
            phase_set=phase_set,
            attributions=attributions,
            callstacks=callstacks,
            reconstructions=reconstructions,
        )
