"""End-to-end analysis: trace in, phase report out.

:mod:`repro.analysis.pipeline` chains the full mechanism (bursts →
clustering → folding → piece-wise linear regression → phases → source
mapping); :mod:`repro.analysis.report` renders the results as text tables;
:mod:`repro.analysis.hints` derives optimization recommendations per phase;
:mod:`repro.analysis.methodology` implements the paper's methodology for
describing (and then improving) a first-time-seen application;
:mod:`repro.analysis.experiments` holds the sweep helpers benchmarks use.
"""

from repro.analysis.pipeline import (
    AnalyzerConfig,
    AnalysisResult,
    ClusterAnalysis,
    FoldingAnalyzer,
)
from repro.analysis.report import render_report
from repro.analysis.hints import Hint, generate_hints
from repro.analysis.methodology import (
    CaseStudyResult,
    describe_application,
    run_case_study,
)
from repro.analysis.uncertainty import RateInterval, bootstrap_phase_rates
from repro.analysis.scaling import (
    ScalingPoint,
    ScalingStudy,
    render_scaling,
    run_scaling_study,
)
from repro.analysis.tracking import (
    ClusterDelta,
    ClusterMatch,
    compare_results,
    match_clusters,
    render_comparison,
)

__all__ = [
    "RateInterval",
    "bootstrap_phase_rates",
    "ScalingPoint",
    "ScalingStudy",
    "run_scaling_study",
    "render_scaling",
    "ClusterMatch",
    "ClusterDelta",
    "match_clusters",
    "compare_results",
    "render_comparison",
    "AnalyzerConfig",
    "FoldingAnalyzer",
    "AnalysisResult",
    "ClusterAnalysis",
    "render_report",
    "Hint",
    "generate_hints",
    "CaseStudyResult",
    "describe_application",
    "run_case_study",
]
