"""Scaling studies: how behaviour evolves with the rank count.

The co-authors' Dalton papers motivate this view: node-level phase
analysis says *what* each region does, but whether the application can
use more processors is a scaling question — parallel efficiency and the
per-cluster time balance as functions of the rank count.  This module
runs the same application across a ladder of rank counts and tabulates
both, so a master/worker bottleneck (efficiency falling with every
doubling) is visible at a glance and can be compared before/after a fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.errors import AnalysisError
from repro.machine.cpu import CoreModel
from repro.runtime.engine import ExecutionEngine
from repro.runtime.tracer import Tracer, TracerConfig
from repro.trace.stats import compute_stats
from repro.workload.application import Application

__all__ = ["ScalingPoint", "ScalingStudy", "run_scaling_study", "render_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """Measurements at one rank count."""

    ranks: int
    wall_s: float
    aggregate_compute_s: float
    parallel_efficiency: float
    comm_fraction: float

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise AnalysisError(f"ranks must be >= 1: {self.ranks}")
        if self.wall_s <= 0:
            raise AnalysisError(f"wall time must be positive: {self.wall_s}")

    @property
    def speedup_base(self) -> float:
        """Aggregate compute per wall second — the useful-throughput rate."""
        return self.aggregate_compute_s / self.wall_s


@dataclass
class ScalingStudy:
    """A ladder of scaling points for one application configuration."""

    app_name: str
    points: List[ScalingPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError("scaling study needs at least one point")
        ranks = [p.ranks for p in self.points]
        if ranks != sorted(ranks):
            raise AnalysisError(f"points must be ordered by ranks: {ranks}")

    def relative_speedup(self) -> List[float]:
        """Useful throughput relative to the smallest rank count."""
        base = self.points[0].speedup_base
        return [p.speedup_base / base for p in self.points]

    def scaling_efficiency(self) -> List[float]:
        """Relative speedup divided by the ideal (linear) speedup."""
        base_ranks = self.points[0].ranks
        return [
            rel / (p.ranks / base_ranks)
            for rel, p in zip(self.relative_speedup(), self.points)
        ]

    @property
    def scales_well(self) -> bool:
        """Conventional bar: >= 70% scaling efficiency at the top count."""
        return self.scaling_efficiency()[-1] >= 0.70


def run_scaling_study(
    app_builder: Callable[[int], Application],
    core: CoreModel,
    rank_counts: Sequence[int],
    seed: int = 0,
    tracer_config: Optional[TracerConfig] = None,
) -> ScalingStudy:
    """Run ``app_builder(ranks)`` for every rank count and measure.

    The builder must return the *same workload per rank* at every count
    (weak scaling) or handle the division itself (strong scaling) — the
    study just measures what it is given.
    """
    if not rank_counts:
        raise AnalysisError("rank_counts must be non-empty")
    if sorted(rank_counts) != list(rank_counts):
        raise AnalysisError(f"rank_counts must be increasing: {rank_counts}")
    points: List[ScalingPoint] = []
    app_name = ""
    for ranks in rank_counts:
        app = app_builder(int(ranks))
        app_name = app.name
        timeline = ExecutionEngine(core, seed=seed).run(app)
        trace = Tracer(tracer_config or TracerConfig(seed=seed)).trace(timeline)
        stats = compute_stats(trace)
        points.append(
            ScalingPoint(
                ranks=int(ranks),
                wall_s=timeline.duration,
                aggregate_compute_s=stats.compute_time_total,
                parallel_efficiency=stats.parallel_efficiency,
                comm_fraction=1.0 - stats.compute_fraction,
            )
        )
    return ScalingStudy(app_name=app_name, points=points)


def render_scaling(study: ScalingStudy) -> str:
    """Text table of a scaling study."""
    rows = []
    for point, rel, eff in zip(
        study.points, study.relative_speedup(), study.scaling_efficiency()
    ):
        rows.append(
            [
                str(point.ranks),
                f"{point.wall_s:.3f}",
                f"{point.parallel_efficiency:.2f}",
                f"{point.comm_fraction:.1%}",
                f"{rel:.2f}x",
                f"{eff:.2f}",
            ]
        )
    table = format_table(
        ["ranks", "wall (s)", "par.eff", "comm", "rel.speedup", "scal.eff"],
        rows,
    )
    verdict = "scales well" if study.scales_well else "scaling bottleneck"
    return f"{study.app_name}: {verdict}\n{table}"
