"""Sweep helpers shared by the benchmark harness.

These wrap the common experiment shapes — run an app at a sampling period,
fold one cluster, score detection against ground truth — so each bench
script stays a thin parameterization of a shared, tested code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.pipeline import AnalysisResult, AnalyzerConfig, FoldingAnalyzer
from repro.clustering.quality import truth_labels_for
from repro.errors import AnalysisError
from repro.machine.cpu import CoreModel
from repro.machine.spec import MachineSpec
from repro.phases.compare import BoundaryScore, match_boundaries
from repro.runtime.engine import ExecutionEngine, ExecutionTimeline
from repro.runtime.sampler import SamplerConfig
from repro.runtime.tracer import Tracer, TracerConfig
from repro.trace.records import Trace
from repro.workload.application import Application

__all__ = [
    "RunArtifacts",
    "run_app",
    "default_core",
    "cluster_kernel_map",
    "detection_scores",
]


@dataclass
class RunArtifacts:
    """Everything one experiment run produced."""

    app: Application
    core: CoreModel
    timeline: ExecutionTimeline
    trace: Trace
    result: AnalysisResult


def default_core() -> CoreModel:
    """The reference machine every benchmark uses."""
    return CoreModel(MachineSpec())


def run_app(
    app: Application,
    core: Optional[CoreModel] = None,
    seed: int = 0,
    period_s: float = 0.02,
    tracer_config: Optional[TracerConfig] = None,
    analyzer_config: Optional[AnalyzerConfig] = None,
) -> RunArtifacts:
    """Run, trace and analyze ``app`` — the standard experiment prologue."""
    core = core or default_core()
    timeline = ExecutionEngine(core, seed=seed).run(app)
    cfg = tracer_config or TracerConfig(sampler=SamplerConfig(period_s=period_s))
    trace = Tracer(cfg).trace(timeline)
    result = FoldingAnalyzer(analyzer_config).analyze(trace)
    return RunArtifacts(
        app=app, core=core, timeline=timeline, trace=trace, result=result
    )


def cluster_kernel_map(artifacts: RunArtifacts) -> Dict[int, str]:
    """Detected cluster id → dominant ground-truth kernel name."""
    truth = np.array(truth_labels_for(artifacts.result.bursts, artifacts.timeline))
    labels = artifacts.result.clustering.labels
    mapping: Dict[int, str] = {}
    for cluster in artifacts.result.clusters:
        mask = labels == cluster.cluster_id
        names, counts = np.unique(truth[mask], return_counts=True)
        mapping[cluster.cluster_id] = str(names[int(np.argmax(counts))])
    return mapping

def detection_scores(
    artifacts: RunArtifacts, tolerance: float = 0.02
) -> Dict[str, BoundaryScore]:
    """Per-kernel boundary scores for every analyzed cluster.

    Maps each analyzed cluster to its dominant ground-truth kernel, then
    scores the detected phase boundaries against that kernel's exact
    normalized boundaries.  When several clusters map to one kernel the
    one covering more time wins (the other is a clustering artifact and
    would double-count).
    """
    mapping = cluster_kernel_map(artifacts)
    kernels = {k.name: k for k in artifacts.app.kernels()}
    best_cluster_for: Dict[str, int] = {}
    share: Dict[str, float] = {}
    for cluster in artifacts.result.clusters:
        kernel_name = mapping[cluster.cluster_id]
        if cluster.time_share > share.get(kernel_name, -1.0):
            share[kernel_name] = cluster.time_share
            best_cluster_for[kernel_name] = cluster.cluster_id

    scores: Dict[str, BoundaryScore] = {}
    for kernel_name, cluster_id in best_cluster_for.items():
        kernel = kernels.get(kernel_name)
        if kernel is None:
            raise AnalysisError(f"unknown kernel in truth mapping: {kernel_name}")
        truth_bounds = kernel.truth_boundaries(artifacts.core)
        detected = artifacts.result.cluster(cluster_id).phase_set.boundaries
        scores[kernel_name] = match_boundaries(
            detected, truth_bounds, tolerance=tolerance
        )
    return scores
