"""Tracking clusters across runs (before/after, machine A/machine B).

Reimplements the idea of Llort et al., *On the usefulness of object
tracking techniques in performance analysis* (SC 2013): when the same
application runs under different conditions — after a code change, on a
different machine, at a different scale — the interesting question is how
each computation region's behaviour *moved*.  Clusters are matched across
the two analyses by proximity in behaviour space (per-instruction event
signatures, which survive duration changes), and matched pairs are
compared metric by metric.

The output answers "the stencil cluster: IPC 0.62 → 0.81, L3 MPKI
60.6 → 38.2, time share 85% → 79%" — the evidence that a transformation
did what the hint promised, beyond the bare wall-clock delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.pipeline import AnalysisResult, ClusterAnalysis
from repro.analysis.report import format_table
from repro.errors import AnalysisError

__all__ = ["ClusterMatch", "ClusterDelta", "match_clusters", "compare_results", "render_comparison"]

#: Per-instruction signature counters (duration-free, so an optimization
#: that only speeds a cluster up leaves its signature nearly unchanged).
SIGNATURE_COUNTERS = (
    "PAPI_L1_DCM",
    "PAPI_L3_TCM",
    "PAPI_FP_OPS",
    "PAPI_BR_MSP",
    "PAPI_VEC_INS",
)

#: Metrics reported per matched cluster.
TRACKED_METRICS = ("MIPS", "IPC", "GFLOPS", "L3_MPKI", "BR_MISS_RATIO", "VEC_RATIO")


@dataclass(frozen=True)
class ClusterMatch:
    """One matched cluster pair and its behaviour-space distance."""

    before_id: int
    after_id: int
    distance: float

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise AnalysisError(f"negative match distance: {self.distance}")


@dataclass(frozen=True)
class ClusterDelta:
    """Metric movement of one matched cluster."""

    match: ClusterMatch
    time_share: Tuple[float, float]
    metrics: Dict[str, Tuple[Optional[float], Optional[float]]]

    def moved(self, metric: str, relative_threshold: float = 0.1) -> bool:
        """Whether ``metric`` changed by more than ``relative_threshold``."""
        before, after = self.metrics.get(metric, (None, None))
        if before is None or after is None or before == 0:
            return False
        return abs(after - before) / abs(before) > relative_threshold


def _signature(cluster: ClusterAnalysis) -> np.ndarray:
    """Duration-free behaviour signature: events per instruction."""
    instances = cluster.instances
    instructions = instances.totals("PAPI_TOT_INS")
    valid = np.isfinite(instructions) & (instructions > 0)
    if not valid.any():
        raise AnalysisError(
            f"cluster {cluster.cluster_id}: no instruction totals for signature"
        )
    out = []
    for counter in SIGNATURE_COUNTERS:
        totals = instances.totals(counter)
        mask = valid & np.isfinite(totals)
        out.append(float((totals[mask] / instructions[mask]).mean()) if mask.any() else 0.0)
    return np.asarray(out)


def match_clusters(
    before: AnalysisResult, after: AnalysisResult
) -> List[ClusterMatch]:
    """Greedy nearest-first matching of analyzed clusters.

    Distances are Euclidean between log-scaled signatures (event ratios
    span orders of magnitude); each cluster matches at most once, pairs
    taken in order of increasing distance — the standard assignment
    heuristic, adequate for the handful of clusters real apps have.
    """
    before_sigs = {c.cluster_id: _signature(c) for c in before.clusters}
    after_sigs = {c.cluster_id: _signature(c) for c in after.clusters}

    def scaled(signature: np.ndarray) -> np.ndarray:
        return np.log10(signature + 1e-6)

    pairs: List[Tuple[float, int, int]] = []
    for b_id, b_sig in before_sigs.items():
        for a_id, a_sig in after_sigs.items():
            distance = float(np.linalg.norm(scaled(b_sig) - scaled(a_sig)))
            pairs.append((distance, b_id, a_id))
    pairs.sort()
    used_b, used_a = set(), set()
    matches: List[ClusterMatch] = []
    for distance, b_id, a_id in pairs:
        if b_id in used_b or a_id in used_a:
            continue
        used_b.add(b_id)
        used_a.add(a_id)
        matches.append(ClusterMatch(before_id=b_id, after_id=a_id, distance=distance))
    return matches


def compare_results(
    before: AnalysisResult, after: AnalysisResult
) -> List[ClusterDelta]:
    """Metric movement for every matched cluster, ordered by time share."""
    deltas: List[ClusterDelta] = []
    for match in match_clusters(before, after):
        cluster_b = before.cluster(match.before_id)
        cluster_a = after.cluster(match.after_id)
        metrics: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
        for metric in TRACKED_METRICS:
            try:
                value_b: Optional[float] = cluster_b.phase_set.weighted_metric(metric)
            except Exception:
                value_b = None
            try:
                value_a: Optional[float] = cluster_a.phase_set.weighted_metric(metric)
            except Exception:
                value_a = None
            metrics[metric] = (value_b, value_a)
        deltas.append(
            ClusterDelta(
                match=match,
                time_share=(cluster_b.time_share, cluster_a.time_share),
                metrics=metrics,
            )
        )
    deltas.sort(key=lambda d: -d.time_share[0])
    return deltas


def render_comparison(
    before: AnalysisResult, after: AnalysisResult
) -> str:
    """Text table of cluster movements between two analyses."""
    deltas = compare_results(before, after)
    if not deltas:
        return "no clusters could be matched between the two analyses"
    rows = []
    for delta in deltas:
        row = [
            f"{delta.match.before_id}->{delta.match.after_id}",
            f"{delta.time_share[0]:.1%}->{delta.time_share[1]:.1%}",
        ]
        for metric in ("MIPS", "IPC", "L3_MPKI", "BR_MISS_RATIO", "VEC_RATIO"):
            value_b, value_a = delta.metrics[metric]
            if value_b is None or value_a is None:
                row.append("-")
            else:
                fmt = "{:.0f}" if metric == "MIPS" else "{:.3g}"
                row.append(f"{fmt.format(value_b)}->{fmt.format(value_a)}")
        rows.append(row)
    return format_table(
        ["cluster", "time share", "MIPS", "IPC", "L3MPKI", "BRmiss", "VEC"],
        rows,
    )
