"""The paper's methodology, executable.

Two entry points:

* :func:`describe_application` — the "first-time-seen application"
  procedure: run, trace, analyze, report, hint.  Everything an analyst
  needs to understand the node-level behaviour of an unknown code.
* :func:`run_case_study` — the optimization loop of the evaluation
  section: describe the application, apply a small code transformation
  (the caller provides it, typically guided by the top hint), re-run the
  *identical* experiment, and quantify the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis.hints import Hint, generate_hints
from repro.analysis.pipeline import AnalysisResult, AnalyzerConfig, FoldingAnalyzer
from repro.analysis.report import render_report
from repro.errors import AnalysisError
from repro.machine.cpu import CoreModel
from repro.runtime.engine import ExecutionEngine, ExecutionTimeline
from repro.runtime.tracer import Tracer, TracerConfig
from repro.trace.records import Trace
from repro.workload.application import Application

__all__ = ["Description", "CaseStudyResult", "describe_application", "run_case_study"]


@dataclass
class Description:
    """Outcome of describing one application."""

    app: Application
    timeline: ExecutionTimeline
    trace: Trace
    result: AnalysisResult
    hints: List[Hint]

    @property
    def report(self) -> str:
        """Rendered text report (tables + hints)."""
        return render_report(self.result, self.hints)

    @property
    def wall_time_s(self) -> float:
        """Simulated wall time of the run (slowest rank)."""
        return self.timeline.duration


@dataclass(frozen=True)
class CaseStudyResult:
    """Before/after comparison of one code transformation."""

    app_name: str
    base_wall_s: float
    optimized_wall_s: float
    transformation: str
    guiding_hint: Optional[Hint]

    def __post_init__(self) -> None:
        if self.base_wall_s <= 0 or self.optimized_wall_s <= 0:
            raise AnalysisError("wall times must be positive")

    @property
    def speedup(self) -> float:
        """base / optimized (>1 means the transformation helped)."""
        return self.base_wall_s / self.optimized_wall_s

    @property
    def improvement_percent(self) -> float:
        """Run-time reduction in percent."""
        return 100.0 * (1.0 - self.optimized_wall_s / self.base_wall_s)

    def __str__(self) -> str:
        return (
            f"{self.app_name}: {self.transformation} -> "
            f"{self.speedup:.3f}x ({self.improvement_percent:.1f}% faster)"
        )


def describe_application(
    app: Application,
    core: CoreModel,
    tracer_config: Optional[TracerConfig] = None,
    analyzer_config: Optional[AnalyzerConfig] = None,
    seed: int = 0,
) -> Description:
    """Run the full methodology on ``app`` (run → trace → analyze → hint)."""
    timeline = ExecutionEngine(core, seed=seed).run(app)
    trace = Tracer(tracer_config or TracerConfig()).trace(timeline)
    result = FoldingAnalyzer(analyzer_config).analyze(trace)
    hints = generate_hints(result)
    return Description(
        app=app, timeline=timeline, trace=trace, result=result, hints=hints
    )


def run_case_study(
    app: Application,
    optimizer: Callable[[Application], Application],
    core: CoreModel,
    transformation_name: str,
    tracer_config: Optional[TracerConfig] = None,
    analyzer_config: Optional[AnalyzerConfig] = None,
    seed: int = 0,
) -> Tuple[CaseStudyResult, Description, Description]:
    """Describe, transform, re-run — the evaluation-section loop.

    Returns the comparison plus both descriptions so callers can inspect
    the phase tables before and after.  The same seed drives both runs, so
    the only difference between them is the transformation itself.
    """
    before = describe_application(
        app,
        core,
        tracer_config=tracer_config,
        analyzer_config=analyzer_config,
        seed=seed,
    )
    optimized_app = optimizer(app)
    after = describe_application(
        optimized_app,
        core,
        tracer_config=tracer_config,
        analyzer_config=analyzer_config,
        seed=seed,
    )
    result = CaseStudyResult(
        app_name=app.name,
        base_wall_s=before.wall_time_s,
        optimized_wall_s=after.wall_time_s,
        transformation=transformation_name,
        guiding_hint=before.hints[0] if before.hints else None,
    )
    return result, before, after
