"""Bootstrap confidence intervals for per-phase rates.

The folded scatter comes from a finite set of instances; how trustworthy
is a phase's fitted rate?  Resampling *instances* (not points — points of
one instance are correlated) with replacement, refitting the per-segment
slopes at the detected breakpoints, and taking percentile intervals gives
a non-parametric CI that honestly reflects instance-to-instance
variability.  Reports can then say "phase 1: 5260 +/- 40 MIPS" instead of
a bare point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.fitting.pwlr import PiecewiseLinearModel, refit_slopes
from repro.folding.fold import FoldedCounter

__all__ = ["RateInterval", "bootstrap_phase_rates"]


@dataclass(frozen=True)
class RateInterval:
    """Percentile bootstrap CI for one phase's rate of one counter."""

    counter: str
    phase_index: int
    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise AnalysisError(
                f"inverted interval [{self.low}, {self.high}] for "
                f"{self.counter} phase {self.phase_index}"
            )

    @property
    def half_width(self) -> float:
        """Half the interval width (the "+/-" of a report line)."""
        return 0.5 * (self.high - self.low)

    @property
    def relative_half_width(self) -> float:
        """Half width over the point estimate (0 when the point is 0)."""
        return self.half_width / abs(self.point) if self.point else 0.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_phase_rates(
    folded: FoldedCounter,
    model: PiecewiseLinearModel,
    n_resamples: int = 200,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
    anchor: bool = True,
    monotone: bool = True,
) -> List[RateInterval]:
    """Bootstrap CIs for every segment rate of ``folded``'s counter.

    Breakpoints stay fixed at ``model``'s (they are structural); only the
    slopes are re-estimated per resample.  Returns one interval per
    segment, in segment order, in absolute events/second.
    """
    if n_resamples < 10:
        raise AnalysisError(f"n_resamples must be >= 10, got {n_resamples}")
    if not 0.5 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0.5, 1), got {confidence}")
    rng = rng or np.random.default_rng(0)

    instance_ids = np.unique(folded.instance_ids)
    if instance_ids.size < 4:
        raise AnalysisError(
            f"need >= 4 instances to bootstrap, got {instance_ids.size}"
        )
    # index folded points by instance once
    points_of: Dict[int, np.ndarray] = {
        int(i): np.flatnonzero(folded.instance_ids == i) for i in instance_ids
    }
    mean_rate = folded.mean_total / folded.mean_duration

    slopes_boot = np.empty((n_resamples, model.n_segments))
    for b in range(n_resamples):
        chosen = rng.choice(instance_ids, size=instance_ids.size, replace=True)
        idx = np.concatenate([points_of[int(i)] for i in chosen])
        x, y = folded.x[idx], folded.y[idx]
        if x.size < model.n_segments + 2:
            # degenerate resample (tiny instances); redraw deterministic-ly
            slopes_boot[b] = model.slopes
            continue
        refit = refit_slopes(x, y, model, anchor=anchor, monotone=monotone)
        slopes_boot[b] = refit.slopes

    alpha = 1.0 - confidence
    lows = np.quantile(slopes_boot, alpha / 2, axis=0) * mean_rate
    highs = np.quantile(slopes_boot, 1 - alpha / 2, axis=0) * mean_rate
    points = model.slopes * mean_rate
    return [
        RateInterval(
            counter=folded.counter,
            phase_index=segment,
            point=float(points[segment]),
            low=float(min(lows[segment], points[segment])),
            high=float(max(highs[segment], points[segment])),
            confidence=confidence,
            n_resamples=n_resamples,
        )
        for segment in range(model.n_segments)
    ]
