"""Text rendering of analysis results.

Produces the per-cluster phase tables the paper's tooling shows an analyst:
normalized span, absolute time, MIPS/IPC/MPKI metrics and the source
attribution, preceded by a run summary and followed by the ranked hints.
Everything is fixed-width plain text so it reads the same in a terminal, a
log file, or a pytest failure message.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.hints import Hint
from repro.analysis.pipeline import AnalysisResult, ClusterAnalysis

__all__ = [
    "render_report",
    "render_cluster",
    "render_store_listing",
    "format_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width table with a header underline (no external deps)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_store_listing(entries: Sequence) -> str:
    """Table of stored-result entries for ``repro query``.

    Duck-typed over :class:`repro.store.artifacts.StoreEntry` (this module
    sits below the store in the layering, so it never imports it).
    """
    rows = [
        [
            entry.short,
            entry.app_name or "(unnamed)",
            str(entry.n_clusters),
            str(entry.n_phases),
            entry.worst_diagnostic or "clean",
            entry.trace_path,
        ]
        for entry in entries
    ]
    return format_table(
        ["fingerprint", "app", "clusters", "phases", "worst", "trace"], rows
    )


def render_cluster(cluster: ClusterAnalysis) -> str:
    """Render one cluster's phase table."""
    header = (
        f"Cluster {cluster.cluster_id}: {cluster.time_share:.1%} of compute "
        f"time, {len(cluster.instances)} instances folded "
        f"({cluster.instances.n_pruned_duration} pruned), "
        f"{cluster.n_phases} phase(s), mean instance "
        f"{cluster.phase_set.mean_duration * 1e3:.2f} ms"
    )
    att_by_index = {a.phase_index: a for a in cluster.attributions}
    rows: List[List[str]] = []
    for phase in cluster.phase_set:
        attribution = att_by_index.get(phase.index)
        source = attribution.describe() if attribution else "n/a"
        rows.append(
            [
                str(phase.index),
                f"{phase.x_start:.3f}-{phase.x_end:.3f}",
                f"{phase.duration_s * 1e3:.3f}",
                _metric(phase, "MIPS", "{:.0f}"),
                _metric(phase, "IPC", "{:.2f}"),
                _metric(phase, "GFLOPS", "{:.2f}"),
                _metric(phase, "L3_MPKI", "{:.2f}"),
                _metric(phase, "BR_MISS_RATIO", "{:.3f}"),
                _metric(phase, "VEC_RATIO", "{:.2f}"),
                source,
            ]
        )
    table = format_table(
        [
            "ph",
            "span",
            "ms",
            "MIPS",
            "IPC",
            "GFLOPS",
            "L3MPKI",
            "BRmiss",
            "VEC",
            "source",
        ],
        rows,
    )
    return f"{header}\n{table}"


def _metric(phase, name: str, fmt: str) -> str:
    value = phase.metrics.get(name)
    return fmt.format(value) if value is not None else "-"


def render_report(
    result: AnalysisResult, hints: Optional[Sequence[Hint]] = None
) -> str:
    """Render the complete analysis report."""
    stats = result.trace_stats
    lines = [
        f"=== Folding analysis: {result.app_name or '(unnamed)'} ===",
        (
            f"ranks={stats.n_ranks} duration={stats.duration:.3f}s "
            f"compute={stats.compute_fraction:.1%} "
            f"parallel-eff={stats.parallel_efficiency:.2f}"
        ),
        (
            f"bursts={len(result.bursts)} samples={stats.n_samples} "
            f"(mean period {stats.mean_sample_period * 1e3:.1f} ms) "
            f"clusters={result.clustering.n_clusters} "
            f"noise={result.clustering.noise_fraction:.1%}"
        ),
    ]
    if result.spmd is not None:
        verdict = "SPMD" if result.spmd.is_spmd else "NOT SPMD"
        lines.append(
            f"structure check: alignment identity {result.spmd.score:.2f} "
            f"vs rank {result.spmd.reference_rank} -> {verdict}"
        )
    lines.append("")
    for cluster in sorted(result.clusters, key=lambda c: -c.time_share):
        lines.append(render_cluster(cluster))
        lines.append("")
    if result.skipped:
        lines.append("Skipped clusters:")
        for cluster_id, reason in sorted(result.skipped.items()):
            lines.append(f"  {cluster_id}: {reason}")
        lines.append("")
    if hints:
        lines.append("Hints (ranked by estimated impact):")
        for hint in hints:
            lines.append("  " + hint.describe())
        lines.append("")
    return "\n".join(lines)
