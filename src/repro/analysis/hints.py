"""Optimization-hint engine.

Implements the qualification step of the paper's methodology: each detected
phase's derived metrics are matched against rules that name the limiting
processor resource and suggest the class of code transformation that
relieves it.  Hints are ranked by estimated impact — the phase's share of
total compute time scaled by how badly the rule fired — so the first hint
is where the developer should look first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.pipeline import AnalysisResult, ClusterAnalysis
from repro.errors import AnalysisError
from repro.phases.detect import Phase

__all__ = ["Hint", "generate_hints", "HINT_RULES"]


@dataclass(frozen=True)
class Hint:
    """One ranked recommendation."""

    cluster_id: int
    phase_index: int
    kind: str
    message: str
    severity: float
    time_share: float
    routine: Optional[str]

    @property
    def impact(self) -> float:
        """Ranking key: how much run time the hint could plausibly touch."""
        return self.severity * self.time_share

    @property
    def is_run_level(self) -> bool:
        """Whether the hint is about the run, not a specific phase."""
        return self.cluster_id < 0

    def describe(self) -> str:
        """One-line rendering used by reports."""
        if self.is_run_level:
            return f"[{self.impact:5.1%}] run-level: {self.message}"
        where = f" in {self.routine}" if self.routine else ""
        return (
            f"[{self.impact:5.1%}] cluster {self.cluster_id} phase "
            f"{self.phase_index}{where}: {self.message}"
        )


def _memory_bound(phase: Phase) -> Optional[Tuple[str, str, float]]:
    l3 = phase.metrics.get("L3_MPKI")
    ipc = phase.metrics.get("IPC")
    if l3 is None or ipc is None:
        return None
    if l3 > 2.0 and ipc < 1.2:
        severity = min(1.0, l3 / 10.0)
        return (
            "memory_bound",
            f"IPC {ipc:.2f} with {l3:.1f} L3 misses/kins — phase streams far "
            "beyond the last-level cache; consider cache blocking, loop "
            "fusion, or software prefetching",
            severity,
        )
    return None


def _branch_bound(phase: Phase) -> Optional[Tuple[str, str, float]]:
    miss_ratio = phase.metrics.get("BR_MISS_RATIO")
    ipc = phase.metrics.get("IPC")
    if miss_ratio is None or ipc is None:
        return None
    if miss_ratio > 0.04 and ipc < 1.5:
        severity = min(1.0, miss_ratio / 0.15)
        return (
            "branch_bound",
            f"{miss_ratio:.1%} of branches mispredict (IPC {ipc:.2f}) — "
            "data-dependent control flow; consider if-conversion, sorting "
            "inputs, or branchless reformulation",
            severity,
        )
    return None


def _vectorizable(phase: Phase) -> Optional[Tuple[str, str, float]]:
    vec = phase.metrics.get("VEC_RATIO")
    ipc = phase.metrics.get("IPC")
    gflops = phase.metrics.get("GFLOPS")
    if vec is None or ipc is None or gflops is None:
        return None
    if vec < 0.25 and ipc > 1.8 and gflops > 0.5:
        severity = min(1.0, (0.25 - vec) * 3.0)
        return (
            "vectorizable",
            f"high-IPC FP phase ({ipc:.2f} IPC, {gflops:.1f} GFLOPS) with "
            f"only {vec:.0%} SIMD instructions — the compiler is not "
            "vectorizing; check dependences/alignment or use intrinsics",
            severity,
        )
    return None


def _tlb_bound(phase: Phase) -> Optional[Tuple[str, str, float]]:
    rates = phase.rates
    ins = rates.get("PAPI_TOT_INS")
    tlb = rates.get("PAPI_TLB_DM")
    ipc = phase.metrics.get("IPC")
    if not ins or tlb is None or ipc is None:
        return None
    tlb_mpki = 1000.0 * tlb / ins
    if tlb_mpki > 1.0 and ipc < 1.0:
        severity = min(1.0, tlb_mpki / 5.0)
        return (
            "tlb_bound",
            f"{tlb_mpki:.1f} DTLB misses/kins — scattered access over a "
            "large footprint; consider huge pages or data-layout changes",
            severity,
        )
    return None


#: Rule registry, applied in order; each returns (kind, message, severity).
HINT_RULES: Sequence[Callable[[Phase], Optional[Tuple[str, str, float]]]] = (
    _memory_bound,
    _branch_bound,
    _vectorizable,
    _tlb_bound,
)


#: Parallel efficiency below this triggers the run-level hint.
PARALLEL_EFFICIENCY_THRESHOLD = 0.92


def _run_level_hints(result: AnalysisResult) -> List[Hint]:
    """Hints about the run as a whole (cluster_id/phase_index = -1).

    The methodology's preflight: when parallel efficiency is poor, the
    first-order problem is *between* ranks (imbalance or serialization —
    e.g. a master/worker collection bottleneck), and node-level phase
    tuning is secondary.  A non-SPMD structure verdict sharpens the
    message when available.
    """
    efficiency = result.trace_stats.parallel_efficiency
    if efficiency >= PARALLEL_EFFICIENCY_THRESHOLD:
        return []
    structure = ""
    if result.spmd is not None and not result.spmd.is_spmd:
        structure = (
            " — the burst structure is not SPMD (alignment identity "
            f"{result.spmd.score:.2f}), consistent with a master/worker "
            "serialization bottleneck"
        )
    lost = 1.0 - efficiency
    return [
        Hint(
            cluster_id=-1,
            phase_index=-1,
            kind="parallel_inefficiency",
            message=(
                f"parallel efficiency is {efficiency:.2f}: "
                f"{lost:.0%} of aggregate compute capacity is lost to "
                f"waiting{structure}; address the inter-rank structure "
                "before node-level phase tuning"
            ),
            severity=min(1.0, 2.0 * lost),
            time_share=lost,
            routine=None,
        )
    ]


def generate_hints(
    result: AnalysisResult,
    rules: Sequence[Callable[[Phase], Optional[Tuple[str, str, float]]]] = HINT_RULES,
    max_hints: int = 10,
) -> List[Hint]:
    """Derive ranked hints from an analysis result."""
    if max_hints < 1:
        raise AnalysisError(f"max_hints must be >= 1, got {max_hints}")
    hints: List[Hint] = _run_level_hints(result)
    for cluster in result.clusters:
        total = sum(p.duration_s for p in cluster.phase_set)
        for phase in cluster.phase_set:
            phase_share = cluster.time_share * (phase.duration_s / total)
            routine = _routine_of(cluster, phase.index)
            for rule in rules:
                fired = rule(phase)
                if fired is None:
                    continue
                kind, message, severity = fired
                hints.append(
                    Hint(
                        cluster_id=cluster.cluster_id,
                        phase_index=phase.index,
                        kind=kind,
                        message=message,
                        severity=severity,
                        time_share=phase_share,
                        routine=routine,
                    )
                )
    hints.sort(key=lambda h: -h.impact)
    return hints[:max_hints]


def _routine_of(cluster: ClusterAnalysis, phase_index: int) -> Optional[str]:
    for attribution in cluster.attributions:
        if attribution.phase_index == phase_index and attribution.attributed:
            return attribution.dominant_routine
    return None
