"""Model-selection criteria for the breakpoint search.

BIC under the Gaussian-residual likelihood, with the standard
``n log(SSE/n) + p log(n)`` form; AIC included for the ablation bench,
which compares both criteria.  ``merge_insignificant`` implements the
post-selection pass that removes boundaries between segments whose slopes
are practically identical — a breakpoint placed inside a homogeneous phase
reduces SSE a little but describes no real structure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import FittingError

__all__ = ["bic", "aic", "merge_insignificant"]

#: SSE floor avoiding log(0) for perfect fits on exact synthetic data.
_SSE_FLOOR = 1e-18


def bic(sse: float, n: int, n_params: int) -> float:
    """Bayesian information criterion (lower is better)."""
    if n < 1:
        raise FittingError(f"n must be >= 1, got {n}")
    if n_params < 0:
        raise FittingError(f"n_params must be >= 0, got {n_params}")
    if sse < 0:
        raise FittingError(f"sse must be >= 0, got {sse}")
    return n * math.log(max(sse, _SSE_FLOOR) / n) + n_params * math.log(n)


def aic(sse: float, n: int, n_params: int) -> float:
    """Akaike information criterion (lower is better)."""
    if n < 1:
        raise FittingError(f"n must be >= 1, got {n}")
    if n_params < 0:
        raise FittingError(f"n_params must be >= 0, got {n_params}")
    if sse < 0:
        raise FittingError(f"sse must be >= 0, got {sse}")
    return n * math.log(max(sse, _SSE_FLOOR) / n) + 2.0 * n_params


def merge_insignificant(model, tol: float = 0.12) -> np.ndarray:
    """Breakpoints to keep after merging similar-slope neighbors.

    Two adjacent segments are merged when their slope difference is below
    ``tol`` times the mean absolute slope of the model.  Returns the
    retained interior breakpoints (the caller refits at them).
    """
    if tol < 0:
        raise FittingError(f"tol must be >= 0, got {tol}")
    slopes = np.asarray(model.slopes, dtype=float)
    breaks = np.asarray(model.breakpoints, dtype=float)
    if breaks.size == 0:
        return breaks
    scale = float(np.mean(np.abs(slopes)))
    if scale == 0.0:
        # All-flat model: every boundary is insignificant.
        return np.array([])
    keep = []
    left_slope = slopes[0]
    for i, boundary in enumerate(breaks):
        right_slope = slopes[i + 1]
        if abs(right_slope - left_slope) >= tol * scale:
            keep.append(float(boundary))
            left_slope = right_slope
        # else: merged — left_slope persists as the reference
    return np.asarray(keep)
