"""Scoring fitted models against exact ground truth.

Only benchmarks/tests use this module — it needs the machine model's
:class:`~repro.machine.rates.RateFunction`, which a real tool never has.
Curve error is measured on the normalized cumulative curve; rate error on
its derivative (the quantity analysts actually read).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError
from repro.machine.rates import RateFunction
from repro.util.stats import r_squared

__all__ = ["FitEvaluation", "evaluate_fit", "evaluate_series"]


@dataclass(frozen=True)
class FitEvaluation:
    """Errors of one fitted curve vs ground truth on a common grid."""

    curve_mae: float
    curve_max_error: float
    curve_r2: float
    rate_relative_mae: float
    n_grid: int

    def __str__(self) -> str:
        return (
            f"curve MAE={self.curve_mae:.4g} max={self.curve_max_error:.4g} "
            f"R2={self.curve_r2:.5f}; rate relMAE={self.rate_relative_mae:.4g}"
        )


def evaluate_series(
    y_fit: np.ndarray,
    rate_fit: np.ndarray,
    y_true: np.ndarray,
    rate_true: np.ndarray,
) -> FitEvaluation:
    """Score precomputed fitted/true series on a shared grid."""
    y_fit = np.asarray(y_fit, dtype=float)
    y_true = np.asarray(y_true, dtype=float)
    rate_fit = np.asarray(rate_fit, dtype=float)
    rate_true = np.asarray(rate_true, dtype=float)
    if not (y_fit.shape == y_true.shape == rate_fit.shape == rate_true.shape):
        raise FittingError("evaluation series must share one grid")
    if y_fit.size < 2:
        raise FittingError(f"grid too small: {y_fit.size}")
    curve_err = np.abs(y_fit - y_true)
    scale = float(np.mean(np.abs(rate_true)))
    if scale <= 0:
        raise FittingError("ground-truth rates are all zero")
    rate_rel = np.abs(rate_fit - rate_true) / scale
    return FitEvaluation(
        curve_mae=float(curve_err.mean()),
        curve_max_error=float(curve_err.max()),
        curve_r2=r_squared(y_true, y_fit),
        rate_relative_mae=float(rate_rel.mean()),
        n_grid=int(y_fit.size),
    )


def evaluate_fit(
    model,
    truth: RateFunction,
    counter: str,
    n_grid: int = 512,
    edge_trim: float = 0.005,
) -> FitEvaluation:
    """Score a :class:`~repro.fitting.pwlr.PiecewiseLinearModel` vs truth.

    ``edge_trim`` excludes the extreme edges of [0,1] where the derivative
    comparison is dominated by which side of a boundary the grid point
    falls on.  Truth is the normalized cumulative curve of ``counter`` and
    its exact piecewise-constant derivative.
    """
    if n_grid < 16:
        raise FittingError(f"n_grid must be >= 16, got {n_grid}")
    if not 0.0 <= edge_trim < 0.5:
        raise FittingError(f"edge_trim must be in [0, 0.5), got {edge_trim}")
    grid = np.linspace(edge_trim, 1.0 - edge_trim, n_grid)
    y_true = truth.normalized_cumulative(grid, counter)
    # Exact normalized derivative: rate / (total / duration).
    scale = truth.total(counter) / truth.duration
    rate_true = truth.rate_at(grid * truth.duration, counter) / scale
    y_fit = model.predict(grid)
    rate_fit = model.slope_at(grid)
    return evaluate_series(y_fit, rate_fit, y_true, rate_true)
