"""Regression stage: piece-wise linear fits of folded samples.

:mod:`repro.fitting.pwlr` implements the paper's contribution — a
continuous piece-wise linear regression whose breakpoints are searched
automatically; the slope of each segment is the counter's rate in that
phase, and the breakpoints are the phase boundaries.
:mod:`repro.fitting.model_selection` provides the information criteria and
segment-merging rules that pick the number of breakpoints.
:mod:`repro.fitting.kernel_smooth` is the *prior-work baseline* (the
Kriging/kernel interpolation used by earlier folding papers), against which
FIG-4 compares.  :mod:`repro.fitting.evaluation` scores any fit against the
machine model's exact ground truth.
"""

from repro.fitting.linear import weighted_lstsq
from repro.fitting.moments import MomentProfile
from repro.fitting.pwlr import (
    PiecewiseLinearModel,
    PWLRConfig,
    fit_fixed_breakpoints,
    fit_pwlr,
    refit_slopes,
    refit_slopes_many,
)
from repro.fitting.model_selection import bic, aic, merge_insignificant
from repro.fitting.kernel_smooth import KernelSmoother, smoother_breakpoints
from repro.fitting.evaluation import FitEvaluation, evaluate_fit

__all__ = [
    "weighted_lstsq",
    "MomentProfile",
    "PiecewiseLinearModel",
    "PWLRConfig",
    "fit_pwlr",
    "fit_fixed_breakpoints",
    "refit_slopes",
    "refit_slopes_many",
    "bic",
    "aic",
    "merge_insignificant",
    "KernelSmoother",
    "smoother_breakpoints",
    "FitEvaluation",
    "evaluate_fit",
]
