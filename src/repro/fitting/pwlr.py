"""Continuous piece-wise linear regression with breakpoint search.

The model on normalized time x in [0, 1] is::

    y(x) = a + s_1 * len(seg_1 ∩ [0,x]) + ... + s_m * len(seg_m ∩ [0,x])

i.e. continuous, linear within each segment, with per-segment slopes
``s_j`` and interior breakpoints ``b_1 < ... < b_{m-1}``.  Because folded
accumulated counters are non-decreasing and pinned to (0,0)-(1,1), the fit
supports two physically-motivated options used by the default pipeline (and
switched off by the ablation bench):

* **anchoring** — heavy pseudo-observations at (0,0) and (1,1);
* **monotonicity** — slopes constrained >= 0 via NNLS.

Breakpoint *positions* are searched greedily over a candidate grid with
local refinement, and the breakpoint *count* is selected by BIC (see
:mod:`repro.fitting.model_selection`), followed by a merge pass that
removes boundaries between segments with statistically indistinguishable
slopes.

The search ranks thousands of candidate configurations per fit;
``PWLRConfig.search_kernel`` chooses how those rankings are computed.
``"moments"`` evaluates candidates through the prefix-moment normal
equations of :mod:`repro.fitting.moments` — O(k^3) per candidate,
independent of the sample count, batched over the whole grid —
``"exact"`` keeps the dense per-candidate least squares, and ``"auto"``
(the default) picks by data size and geometry.  Either way the kernel
only *ranks*: the selected breakpoints are always refit through the
exact (optionally NNLS-constrained, anchored) path, and both kernels
select identical breakpoints — enforced by the ``pwlr_kernel`` selftest
suite, which also checks full-pipeline results stay byte-identical
through the store codec.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar, nnls

from repro.errors import FittingError
from repro.fitting.linear import weighted_lstsq
from repro.fitting import model_selection
from repro.fitting.moments import MomentProfile
from repro.observability.context import counter as _metric_counter
from repro.observability.context import histogram as _metric_histogram
from repro.observability.context import span as _span

__all__ = [
    "PiecewiseLinearModel",
    "PWLRConfig",
    "fit_fixed_breakpoints",
    "fit_pwlr",
    "refit_slopes",
    "refit_slopes_many",
]


def _evaluate_pwl(
    knots: np.ndarray, slopes: np.ndarray, intercept: float, xs: np.ndarray
) -> np.ndarray:
    """Evaluate a continuous PWL curve at ``xs``.

    Single source of the evaluation arithmetic shared by
    :meth:`PiecewiseLinearModel.predict` and the post-fit residual pass
    in :func:`fit_fixed_breakpoints` — both must produce bit-identical
    values for the reported data SSE to match a later re-prediction.
    """
    values = intercept + np.concatenate([[0.0], np.cumsum(slopes * np.diff(knots))])
    idx = np.clip(np.searchsorted(knots, xs, side="right") - 1, 0, slopes.size - 1)
    return values[idx] + slopes[idx] * (xs - knots[idx])


@dataclass(frozen=True)
class PiecewiseLinearModel:
    """A fitted continuous piece-wise linear curve on [0, 1].

    ``breakpoints`` are the interior boundaries; ``slopes`` has one entry
    per segment (``len(breakpoints) + 1``).  ``sse``/``n_points`` describe
    the fit on the data it was estimated from.
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercept: float
    sse: float
    n_points: int

    def __post_init__(self) -> None:
        bp = np.asarray(self.breakpoints, dtype=float)
        sl = np.asarray(self.slopes, dtype=float)
        object.__setattr__(self, "breakpoints", bp)
        object.__setattr__(self, "slopes", sl)
        if bp.size and (np.any(bp <= 0.0) or np.any(bp >= 1.0)):
            raise FittingError(f"interior breakpoints must lie in (0,1): {bp}")
        if bp.size > 1 and np.any(np.diff(bp) <= 0):
            raise FittingError(f"breakpoints must be strictly increasing: {bp}")
        if sl.size != bp.size + 1:
            raise FittingError(
                f"{sl.size} slopes for {bp.size} breakpoints (need {bp.size + 1})"
            )
        if self.n_points < 0:
            raise FittingError(f"negative n_points: {self.n_points}")

    # ------------------------------------------------------------------
    @property
    def knots(self) -> np.ndarray:
        """All segment boundaries including 0 and 1."""
        return np.concatenate([[0.0], self.breakpoints, [1.0]])

    @property
    def n_segments(self) -> int:
        """Number of linear segments."""
        return int(self.slopes.size)

    @property
    def segment_lengths(self) -> np.ndarray:
        """Length of each segment on the normalized axis."""
        return np.diff(self.knots)

    def knot_values(self) -> np.ndarray:
        """Model value at each knot (continuity makes this well defined)."""
        return self.intercept + np.concatenate(
            [[0.0], np.cumsum(self.slopes * self.segment_lengths)]
        )

    def predict(self, x) -> np.ndarray:
        """Evaluate the curve at ``x`` (vectorized).

        Evaluation contract (pinned by ``tests/test_property_pwlr.py``
        and the selftest ``predict`` oracle suite):

        - The curve is **continuous everywhere**, including at interior
          breakpoints: segments join at the shared knot value.
        - Segment selection is **right-continuous** — exactly at an
          interior breakpoint ``b_i`` the point belongs to the segment
          *starting* there, so an infinitesimal step to the right stays
          on the same segment (``slope_at`` agrees).
        - Outside ``[0, 1]`` the curve is **extended linearly**, not
          clamped: ``x < 0`` extrapolates the first segment's line and
          ``x > 1`` the last segment's.  ``x == 1.0`` lies on the last
          segment (there is no knot beyond it to switch to).
        - Scalar input returns a Python ``float``; array input returns
          an array of the broadcast shape.
        """
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        out = _evaluate_pwl(self.knots, self.slopes, self.intercept, xs)
        return out if np.ndim(x) else float(out[0])

    def slope_at(self, x) -> np.ndarray:
        """Segment slope at ``x`` (vectorized).

        Follows the same segment-selection contract as :meth:`predict`:
        **right-continuous** at interior breakpoints (``slope_at(b_i)``
        is the slope of the segment starting at ``b_i``), and clamped to
        the edge segments outside ``[0, 1]`` — ``x <= 0`` reports the
        first slope, ``x >= 1`` the last — matching the linear extension
        :meth:`predict` applies there.  Scalar in, ``float`` out.
        """
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        idx = np.clip(
            np.searchsorted(self.knots, xs, side="right") - 1, 0, self.n_segments - 1
        )
        out = self.slopes[idx]
        return out if np.ndim(x) else float(out[0])

    def segments(self) -> List[Tuple[float, float, float]]:
        """List of ``(x_start, x_end, slope)`` triples."""
        knots = self.knots
        return [
            (float(knots[i]), float(knots[i + 1]), float(self.slopes[i]))
            for i in range(self.n_segments)
        ]

    @property
    def rmse(self) -> float:
        """Root mean squared error on the fitting data."""
        return float(np.sqrt(self.sse / self.n_points)) if self.n_points else 0.0


@dataclass(frozen=True)
class PWLRConfig:
    """Knobs of the automatic fit.

    Attributes
    ----------
    max_breakpoints:
        Upper bound on interior breakpoints (phases - 1).
    n_candidates:
        Size of the uniform candidate grid the search works on.
    min_separation:
        Minimum distance between breakpoints (and to the edges); phases
        finer than this are not representable.
    anchor:
        Pin the curve to (0,0) and (1,1) with heavy pseudo-points.
    anchor_weight:
        Weight of each pseudo-point relative to the whole sample.
    monotone:
        Constrain slopes to be >= 0 (accumulated counters cannot shrink).
    bic_patience:
        Keep adding breakpoints this many steps past a BIC worsening
        before giving up (escapes single-step local minima).
    merge_slope_tol:
        After selection, merge adjacent segments whose slopes differ by
        less than this fraction of the mean absolute slope.
    refine_passes:
        Local-refinement sweeps over breakpoint positions per added point.
    min_phase_span:
        Phases narrower than this are considered boundary-blur artifacts
        (instance-to-instance jitter smears each true boundary into a
        knee, which a PWL fit splits with two nearby breakpoints) and are
        merged into their weaker-boundary neighbor by the phase-detection
        stage.
    search_kernel:
        How candidate configurations are *ranked* during the breakpoint
        search: ``"moments"`` uses the n-independent prefix-moment
        kernel (:mod:`repro.fitting.moments`), ``"exact"`` the dense
        per-candidate least squares, ``"auto"`` (default) picks moments
        for large well-conditioned series and exact otherwise.  Both
        kernels select identical breakpoints and results (the selected
        configuration is always refit through the exact path), so this
        knob is excluded from store fingerprints like ``n_jobs``.
    """

    max_breakpoints: int = 11
    n_candidates: int = 96
    min_separation: float = 0.01
    anchor: bool = True
    anchor_weight: float = 0.25
    monotone: bool = True
    bic_patience: int = 2
    merge_slope_tol: float = 0.12
    refine_passes: int = 2
    min_phase_span: float = 0.02
    search_kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.max_breakpoints < 0:
            raise FittingError(f"max_breakpoints must be >= 0: {self.max_breakpoints}")
        if self.n_candidates < 2:
            raise FittingError(f"n_candidates must be >= 2: {self.n_candidates}")
        if not 0.0 < self.min_separation < 0.5:
            raise FittingError(f"min_separation must be in (0, 0.5): {self.min_separation}")
        if self.anchor_weight <= 0:
            raise FittingError(f"anchor_weight must be > 0: {self.anchor_weight}")
        if self.bic_patience < 0:
            raise FittingError(f"bic_patience must be >= 0: {self.bic_patience}")
        if self.merge_slope_tol < 0:
            raise FittingError(f"merge_slope_tol must be >= 0: {self.merge_slope_tol}")
        if self.refine_passes < 0:
            raise FittingError(f"refine_passes must be >= 0: {self.refine_passes}")
        if not 0.0 <= self.min_phase_span < 0.5:
            raise FittingError(
                f"min_phase_span must be in [0, 0.5): {self.min_phase_span}"
            )
        if self.search_kernel not in ("auto", "moments", "exact"):
            raise FittingError(
                "search_kernel must be 'auto', 'moments' or 'exact': "
                f"{self.search_kernel!r}"
            )


# ----------------------------------------------------------------------
# fixed-breakpoint fit
# ----------------------------------------------------------------------
def _segment_basis(x: np.ndarray, breakpoints: np.ndarray) -> np.ndarray:
    """Column j = length of segment j intersected with [0, x].

    With this parameterization the coefficient of column j *is* the slope
    of segment j, which makes the monotonicity constraint a plain
    non-negativity constraint.
    """
    knots = np.concatenate([[0.0], breakpoints, [1.0]])
    lo = knots[:-1]
    hi = knots[1:]
    return np.clip(x[:, None], lo[None, :], hi[None, :]) - lo[None, :]


def _finish_model(
    x: np.ndarray,
    y: np.ndarray,
    bp: np.ndarray,
    intercept: float,
    slopes: np.ndarray,
) -> PiecewiseLinearModel:
    """Assemble the fitted model, reporting the *data* SSE (anchors
    excluded) so BIC compares models on the same likelihood."""
    slopes = np.asarray(slopes, dtype=float)
    knots = np.concatenate([[0.0], bp, [1.0]])
    residuals = y - _evaluate_pwl(knots, slopes, intercept, x)
    return PiecewiseLinearModel(
        breakpoints=bp,
        slopes=slopes,
        intercept=intercept,
        sse=float(residuals @ residuals),
        n_points=int(x.size),
    )


def fit_fixed_breakpoints(
    x: np.ndarray,
    y: np.ndarray,
    breakpoints: Sequence[float],
    anchor: bool = True,
    anchor_weight: float = 0.25,
    monotone: bool = True,
) -> PiecewiseLinearModel:
    """Least-squares continuous PWL fit with known breakpoints.

    ``anchor_weight`` is the fraction of the total sample weight assigned
    to *each* of the two pseudo-points (0,0) and (1,1).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise FittingError(f"x/y must be equal-length 1-D arrays: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise FittingError(f"need at least 2 points to fit, got {x.size}")
    bp = np.sort(np.asarray(breakpoints, dtype=float))
    if bp.size and (bp[0] <= 0.0 or bp[-1] >= 1.0):
        raise FittingError(f"breakpoints must be interior to (0,1): {bp}")

    n = x.size
    if anchor:
        w_anchor = anchor_weight * n
        x_fit = np.concatenate([x, [0.0, 1.0]])
        y_fit = np.concatenate([y, [0.0, 1.0]])
        weights = np.concatenate([np.ones(n), [w_anchor, w_anchor]])
    else:
        x_fit, y_fit, weights = x, y, np.ones(n)

    basis = _segment_basis(x_fit, bp)
    if monotone:
        # NNLS with a free intercept: a = a_plus - a_minus, both >= 0.
        design = np.column_stack([np.ones_like(x_fit), -np.ones_like(x_fit), basis])
        sqrt_w = np.sqrt(weights)
        coeffs, _ = nnls(design * sqrt_w[:, None], y_fit * sqrt_w)
        intercept = float(coeffs[0] - coeffs[1])
        slopes = coeffs[2:]
    else:
        design = np.column_stack([np.ones_like(x_fit), basis])
        coeffs, _ = weighted_lstsq(design, y_fit, weights)
        intercept = float(coeffs[0])
        slopes = coeffs[1:]
    return _finish_model(x, y, bp, intercept, slopes)


# ----------------------------------------------------------------------
# search scorer: kernel selection, batching, memoization
# ----------------------------------------------------------------------

#: Below this many samples the dense evaluator is as fast as a batched
#: moments solve, so "auto" keeps the reference path.
_AUTO_MIN_POINTS = 512

#: "auto" requires this many distinct abscissae per model parameter —
#: degenerate geometries (heavily duplicated x) condition the normal
#: equations badly and stay on the exact path.
_AUTO_DISTINCT_FACTOR = 8

#: Per-fit memo-cache bound (rounded-tuple LRU).
_SEARCH_CACHE_MAX = 8192


class _SearchScorer:
    """Candidate-configuration evaluator behind the breakpoint search.

    Resolves ``PWLRConfig.search_kernel`` to the grid evaluator
    ("moments": batched prefix-moment solves; "exact": per-candidate
    dense lstsq), memoizes repeated configurations across refinement
    passes (rounded-tuple LRU), and accumulates the evaluation count
    flushed once per fit to ``pwlr.candidate_evaluations`` — requested
    evaluations count whether or not the cache absorbs them, so the
    counter is kernel- and cache-independent.

    Continuous (off-grid) refinement evaluates through
    :meth:`fit_continuous`, which always uses the shared moments profile
    with its deterministic exact escape — *regardless of the kernel* —
    so the scalar minimizer sees bit-identical objective values under
    either kernel.  Grid stages are pure comparisons and the final fit
    is always exact, which together make the two kernels select
    identical breakpoints and serialize byte-identical results.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, cfg: "PWLRConfig") -> None:
        self.x = x
        self.y = y
        self.cfg = cfg
        self.n = int(x.size)
        self.kernel = self._resolve_kernel(cfg, x, y)
        self.n_evals = 0
        self.n_cache_hits = 0
        self.n_exact_escapes = 0
        self._cache: "OrderedDict[tuple, PiecewiseLinearModel]" = OrderedDict()
        try:
            self._profile: Optional[MomentProfile] = MomentProfile(
                x, y, anchor=cfg.anchor, anchor_weight=cfg.anchor_weight
            )
        except FittingError:
            self._profile = None

    @staticmethod
    def _resolve_kernel(cfg: "PWLRConfig", x: np.ndarray, y: np.ndarray) -> str:
        if cfg.search_kernel != "auto":
            return cfg.search_kernel
        if x.size < _AUTO_MIN_POINTS:
            return "exact"
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            return "exact"
        if np.unique(x).size < _AUTO_DISTINCT_FACTOR * (cfg.max_breakpoints + 2):
            return "exact"
        return "moments"

    # -- public evaluation API -----------------------------------------
    def fit_one(self, breaks: Sequence[float]) -> PiecewiseLinearModel:
        """Evaluate one configuration with the kernel-selected evaluator."""
        return self.fit_many([list(breaks)])[0]

    def fit_many(
        self, configs: Sequence[Sequence[float]]
    ) -> List[PiecewiseLinearModel]:
        """Evaluate a batch of configurations (kernel evaluator)."""
        return self._evaluate(configs, self.kernel)

    def fit_continuous(self, breaks: Sequence[float]) -> PiecewiseLinearModel:
        """Evaluate one off-grid configuration on the shared moments
        profile (kernel-independent; exact escape when unreliable)."""
        return self._evaluate([list(breaks)], "moments")[0]

    # -- internals ------------------------------------------------------
    def _evaluate(
        self, configs: Sequence[Sequence[float]], domain: str
    ) -> List[PiecewiseLinearModel]:
        self.n_evals += len(configs)
        models: List[Optional[PiecewiseLinearModel]] = [None] * len(configs)
        keys: List[tuple] = []
        missing: List[int] = []
        for i, breaks in enumerate(configs):
            key = (domain, tuple(round(float(b), 12) for b in breaks))
            keys.append(key)
            hit = self._cache.get(key)
            if hit is not None:
                self.n_cache_hits += 1
                self._cache.move_to_end(key)
                models[i] = hit
            else:
                missing.append(i)
        if missing:
            if domain == "moments":
                fresh = self._eval_moments([configs[i] for i in missing])
            else:
                fresh = [self._eval_exact(configs[i]) for i in missing]
            for i, model in zip(missing, fresh):
                models[i] = model
                self._cache[keys[i]] = model
                if len(self._cache) > _SEARCH_CACHE_MAX:
                    self._cache.popitem(last=False)
        return models  # type: ignore[return-value]

    def _eval_exact(self, breaks: Sequence[float]) -> PiecewiseLinearModel:
        # Rank with the unconstrained solver: orders of magnitude faster
        # than NNLS and equally good at *ranking* configurations by SSE.
        return fit_fixed_breakpoints(
            self.x,
            self.y,
            breaks,
            anchor=self.cfg.anchor,
            anchor_weight=self.cfg.anchor_weight,
            monotone=False,
        )

    def _eval_moments(
        self, configs: Sequence[Sequence[float]]
    ) -> List[PiecewiseLinearModel]:
        if self._profile is None:
            self.n_exact_escapes += len(configs)
            return [self._eval_exact(b) for b in configs]
        models: List[Optional[PiecewiseLinearModel]] = [None] * len(configs)
        by_len: Dict[int, List[int]] = {}
        for i, breaks in enumerate(configs):
            by_len.setdefault(len(breaks), []).append(i)
        for length, idxs in by_len.items():
            bp = np.asarray(
                [configs[i] for i in idxs], dtype=float
            ).reshape(len(idxs), length)
            coeffs, sse, ok = self._profile.evaluate_many(bp)
            for row, i in enumerate(idxs):
                if ok[row]:
                    models[i] = PiecewiseLinearModel(
                        breakpoints=np.asarray(configs[i], dtype=float),
                        slopes=coeffs[row, 1:].copy(),
                        intercept=float(coeffs[row, 0]),
                        sse=float(sse[row]),
                        n_points=self.n,
                    )
                else:
                    # Precision escape: near-interpolating or singular
                    # configurations re-rank through the dense path so
                    # cancellation noise never decides a comparison.
                    self.n_exact_escapes += 1
                    models[i] = self._eval_exact(configs[i])
        return models  # type: ignore[return-value]


# ----------------------------------------------------------------------
# automatic breakpoint search
# ----------------------------------------------------------------------
def fit_pwlr(
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[PWLRConfig] = None,
) -> PiecewiseLinearModel:
    """Automatic continuous PWL fit: greedy breakpoint insertion + BIC.

    Algorithm:

    1. start from the single-segment fit;
    2. repeatedly add the candidate breakpoint that minimizes SSE, then
       locally refine every breakpoint on the candidate grid;
    3. keep the BIC-best model seen, stopping ``bic_patience`` steps after
       BIC stops improving or at ``max_breakpoints``;
    4. merge adjacent segments with indistinguishable slopes and refit.
    """
    cfg = config or PWLRConfig()
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size < 8:
        raise FittingError(f"need at least 8 points for the search, got {x.size}")
    with _span("fit_pwlr", n_points=int(x.size)) as rec:
        model, scorer = _fit_pwlr_impl(x, y, cfg)
    _metric_counter("pwlr.fits").inc()
    _metric_counter("pwlr.candidate_evaluations").inc(scorer.n_evals)
    _metric_counter(f"pwlr.kernel.{scorer.kernel}").inc()
    _metric_counter("pwlr.search_cache_hits").inc(scorer.n_cache_hits)
    if scorer.n_exact_escapes:
        _metric_counter("pwlr.search_exact_escapes").inc(scorer.n_exact_escapes)
    if rec is not None:
        _metric_histogram("pwlr.fit_seconds").observe(rec.wall_s)
    return model


def _fit_pwlr_impl(
    x: np.ndarray, y: np.ndarray, cfg: "PWLRConfig"
) -> Tuple[PiecewiseLinearModel, _SearchScorer]:
    grid = np.linspace(cfg.min_separation, 1.0 - cfg.min_separation, cfg.n_candidates)
    # The scorer owns the kernel choice, the per-fit memo cache and the
    # evaluation count, which is accumulated locally and flushed to the
    # metrics registry once per fit: the search evaluates thousands of
    # configurations and must not pay a context lookup per call.
    scorer = _SearchScorer(x, y, cfg)

    def final_fit(breaks: Sequence[float]) -> PiecewiseLinearModel:
        return fit_fixed_breakpoints(
            x,
            y,
            breaks,
            anchor=cfg.anchor,
            anchor_weight=cfg.anchor_weight,
            monotone=cfg.monotone,
        )

    current: List[float] = []
    model = scorer.fit_one(current)
    best_breaks: List[float] = []
    best_bic = model_selection.bic(model.sse, model.n_points, _n_params(model))
    worsening = 0

    while len(current) < cfg.max_breakpoints:
        addition = _best_addition(scorer, current, grid, cfg.min_separation)
        if addition is None:
            break
        current, model = addition
        for _ in range(cfg.refine_passes):
            current, model = _refine_positions(
                scorer, current, model, grid, cfg.min_separation
            )
        # Refine positions off-grid before judging this k: BIC must compare
        # each breakpoint count at its best achievable positions, not at
        # grid-quantized ones (a sharp knee between grid points otherwise
        # makes k+2 staircases look better than the true k).
        current = _continuous_refine(
            scorer.fit_continuous, current, cfg.min_separation, passes=1
        )
        model = scorer.fit_one(current)
        candidate_bic = model_selection.bic(model.sse, model.n_points, _n_params(model))
        if candidate_bic < best_bic:
            best_bic = candidate_bic
            best_breaks = list(current)
            worsening = 0
        else:
            worsening += 1
            if worsening > cfg.bic_patience:
                break

    # Continuous position refinement: the grid quantizes breakpoints, and
    # with sharp knees that quantization splits one true boundary into two
    # neighboring grid points.  A bounded 1-D minimization per breakpoint
    # recovers the exact position (exact on noiseless data).
    best_breaks = _continuous_refine(
        scorer.fit_continuous, best_breaks, cfg.min_separation
    )

    best_model = final_fit(best_breaks)
    while True:
        before = best_model.breakpoints.size
        if cfg.merge_slope_tol > 0 and best_model.breakpoints.size:
            merged_breaks = model_selection.merge_insignificant(
                best_model, tol=cfg.merge_slope_tol
            )
            if merged_breaks.size < best_model.breakpoints.size:
                best_model = final_fit(list(merged_breaks))
        if cfg.min_phase_span > 0 and best_model.breakpoints.size:
            cleaned = _drop_narrowest_sliver(best_model, cfg.min_phase_span)
            if cleaned is not None:
                best_model = final_fit(cleaned)
        if best_model.breakpoints.size == before:
            break
    return best_model, scorer


def _n_params(model: PiecewiseLinearModel) -> int:
    """Free parameters: intercept + slopes + breakpoint positions."""
    return 1 + model.n_segments + model.breakpoints.size


def _best_addition(
    scorer: _SearchScorer, current: List[float], grid: np.ndarray, min_sep: float
):
    """Score every candidate insertion in one batch; return the
    ``(breaks, model)`` of the best one (first wins on ties)."""
    trials: List[List[float]] = []
    for candidate in grid:
        if any(abs(candidate - b) < min_sep for b in current):
            continue
        trials.append(sorted(current + [float(candidate)]))
    if not trials:
        return None
    best = None
    best_sse = np.inf
    for trial_breaks, trial in zip(trials, scorer.fit_many(trials)):
        if trial.sse < best_sse:
            best_sse = trial.sse
            best = (trial_breaks, trial)
    return best


def _refine_positions(
    scorer: _SearchScorer,
    current: List[float],
    model: PiecewiseLinearModel,
    grid: np.ndarray,
    min_sep: float,
    window: int = 5,
):
    """Coordinate descent on breakpoint positions, ``window`` grid steps
    wide; each breakpoint's window is scored as one batch."""
    breaks = list(current)
    best_model = model
    for i in range(len(breaks)):
        others = breaks[:i] + breaks[i + 1 :]
        anchor_idx = int(np.argmin(np.abs(grid - breaks[i])))
        lo = max(0, anchor_idx - window)
        hi = min(grid.size, anchor_idx + window + 1)
        positions: List[float] = []
        trials: List[List[float]] = []
        for candidate in grid[lo:hi]:
            if any(abs(candidate - b) < min_sep for b in others):
                continue
            positions.append(float(candidate))
            trials.append(sorted(others + [float(candidate)]))
        best_pos = breaks[i]
        if trials:
            for position, trial in zip(positions, scorer.fit_many(trials)):
                if trial.sse < best_model.sse - 1e-15:
                    best_model = trial
                    best_pos = position
        breaks[i] = best_pos
        breaks.sort()
    return breaks, best_model


def _continuous_refine(
    fit_at,
    breaks: List[float],
    min_sep: float,
    passes: int = 2,
    xatol: float = 1e-5,
) -> List[float]:
    """Coordinate descent with continuous (off-grid) breakpoint positions.

    ``objective(breaks[i])`` is the SSE of the *whole current
    configuration* — the same value for every ``i`` — so it is computed
    once up front and carried across accepted moves instead of being
    re-fit after every minimizer call.
    """
    breaks = sorted(float(b) for b in breaks)
    if not breaks:
        return breaks
    current_sse: Optional[float] = None
    for _ in range(passes):
        for i in range(len(breaks)):
            lo = (breaks[i - 1] + min_sep) if i > 0 else min_sep
            hi = (breaks[i + 1] - min_sep) if i < len(breaks) - 1 else 1.0 - min_sep
            if hi <= lo:
                continue
            others = breaks[:i] + breaks[i + 1 :]

            def objective(position: float) -> float:
                return fit_at(sorted(others + [float(position)])).sse

            if current_sse is None:
                current_sse = objective(breaks[i])
            result = minimize_scalar(
                objective, bounds=(lo, hi), method="bounded", options={"xatol": xatol}
            )
            if result.fun <= current_sse:
                breaks[i] = float(result.x)
                current_sse = float(result.fun)
        breaks.sort()
    return breaks


def _drop_narrowest_sliver(
    model: PiecewiseLinearModel, min_phase_span: float
) -> Optional[List[float]]:
    """Breakpoints after removing the weaker boundary of the narrowest
    too-narrow segment; ``None`` when no segment is below the span floor."""
    breaks = [float(b) for b in model.breakpoints]
    spans = model.segment_lengths
    narrow = np.flatnonzero(spans < min_phase_span)
    if narrow.size == 0:
        return None
    segment = int(narrow[np.argmin(spans[narrow])])
    adjacent = [b for b in (segment - 1, segment) if 0 <= b < len(breaks)]
    scale = float(np.mean(np.abs(model.slopes))) or 1.0

    def strength(boundary_index: int) -> float:
        return abs(
            float(model.slopes[boundary_index + 1] - model.slopes[boundary_index])
        ) / scale

    weakest = min(adjacent, key=strength)
    breaks.pop(weakest)
    return breaks


def refit_slopes(
    x: np.ndarray,
    y: np.ndarray,
    model: PiecewiseLinearModel,
    anchor: bool = True,
    anchor_weight: float = 0.25,
    monotone: bool = True,
) -> PiecewiseLinearModel:
    """Fit a *different counter*'s slopes at ``model``'s breakpoints.

    The pipeline finds breakpoints once on the pivot counter (instructions)
    and re-estimates per-segment slopes for every other counter at those
    shared boundaries, so all metrics describe the same phases.  When
    several counters share the same abscissa, prefer
    :func:`refit_slopes_many`, which builds the design matrix once.
    """
    _metric_counter("pwlr.refits").inc()
    return fit_fixed_breakpoints(
        x,
        y,
        model.breakpoints,
        anchor=anchor,
        anchor_weight=anchor_weight,
        monotone=monotone,
    )


def refit_slopes_many(
    x: np.ndarray,
    ys: Sequence[np.ndarray],
    model: PiecewiseLinearModel,
    anchor: bool = True,
    anchor_weight: float = 0.25,
    monotone: bool = True,
) -> List[PiecewiseLinearModel]:
    """Batched :func:`refit_slopes`: many counters sharing one abscissa.

    The phase pipeline re-estimates *every* counter's slopes at the same
    shared boundaries; calling :func:`refit_slopes` per counter rebuilds
    an identical design matrix (segment basis + anchor rows + weight
    scaling) each time.  This factors the design once: the monotone path
    then runs one NNLS per counter against the shared pre-scaled design
    — **bit-identical** to the per-counter path — and the unconstrained
    path solves every counter at once through a precomputed
    pseudo-inverse of the scaled design (equal within solver roundoff).

    Returns one fitted model per entry of ``ys``, in order.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise FittingError(f"x must be a 1-D array: {x.shape}")
    if x.size < 2:
        raise FittingError(f"need at least 2 points to fit, got {x.size}")
    targets = [np.asarray(yy, dtype=float) for yy in ys]
    for yy in targets:
        if yy.shape != x.shape:
            raise FittingError(
                f"x/y must be equal-length 1-D arrays: {x.shape} vs {yy.shape}"
            )
    if not targets:
        return []
    bp = np.sort(np.asarray(model.breakpoints, dtype=float))
    if bp.size and (bp[0] <= 0.0 or bp[-1] >= 1.0):
        raise FittingError(f"breakpoints must be interior to (0,1): {bp}")

    n = x.size
    if anchor:
        w_anchor = anchor_weight * n
        x_fit = np.concatenate([x, [0.0, 1.0]])
        weights = np.concatenate([np.ones(n), [w_anchor, w_anchor]])
    else:
        x_fit, weights = x, np.ones(n)
    basis = _segment_basis(x_fit, bp)
    sqrt_w = np.sqrt(weights)

    def target_vector(yy: np.ndarray) -> np.ndarray:
        return np.concatenate([yy, [0.0, 1.0]]) if anchor else yy

    _metric_counter("pwlr.refits").inc(len(targets))
    _metric_counter("pwlr.refit_batches").inc()

    out: List[PiecewiseLinearModel] = []
    if monotone:
        design = np.column_stack([np.ones_like(x_fit), -np.ones_like(x_fit), basis])
        scaled = design * sqrt_w[:, None]
        for yy in targets:
            coeffs, _ = nnls(scaled, target_vector(yy) * sqrt_w)
            out.append(
                _finish_model(x, yy, bp, float(coeffs[0] - coeffs[1]), coeffs[2:])
            )
    else:
        design = np.column_stack([np.ones_like(x_fit), basis])
        scaled = design * sqrt_w[:, None]
        pseudo_inverse = np.linalg.pinv(scaled)
        stacked = np.stack([target_vector(yy) for yy in targets], axis=1)
        coeffs = pseudo_inverse @ (stacked * sqrt_w[:, None])
        for j, yy in enumerate(targets):
            out.append(_finish_model(x, yy, bp, float(coeffs[0, j]), coeffs[1:, j]))
    return out
