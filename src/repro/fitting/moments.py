"""Prefix-moment scoring kernel for the PWLR breakpoint search.

The search in :mod:`repro.fitting.pwlr` ranks thousands of candidate
breakpoint configurations per fit.  Evaluating one candidate the direct
way builds an ``n x (k+2)`` design matrix and runs a dense least squares
— O(n * k^2) per candidate.  This module removes the ``n`` from that
cost: the segment-overlap basis column

    B_j(x) = clip(x, lo_j, hi_j) - lo_j

is piece-wise linear in ``x``, so every entry of the normal equations
``(G c = b)`` is a closed form in six weighted moments of the data —
``sum(w)``, ``sum(w*x)``, ``sum(w*x^2)``, ``sum(w*y)``, ``sum(w*x*y)``,
``sum(w*y^2)``.  Prefix sums of those moments over ``x`` sorted
ascending are computed **once** per series; any candidate configuration
then assembles its ``(k+2) x (k+2)`` Gram matrix from O(k) prefix
lookups and solves a tiny system: O(k^3) per candidate, independent of
``n``.  Whole candidate batches are assembled and solved in one
vectorized pass (see :meth:`MomentProfile.evaluate_many`).

Closed forms (segment ``j`` with bounds ``lo < hi``, length ``L``):
``B_j`` is 0 below ``lo``, ``x - lo`` on ``[lo, hi)`` and ``L`` from
``hi`` on, so with mid-range moment sums ``S*`` over ``lo <= x < hi``
and tail sums ``T*`` over ``x >= hi``:

    sum(w B_j)     = (S1 - lo*S0) + L*T0
    sum(w B_j^2)   = (S2 - 2*lo*S1 + lo^2*S0) + L^2*T0
    sum(w B_j y)   = (Sxy - lo*Sy) + L*Ty
    sum(w B_j B_l) = L_j * sum(w B_l)          for j < l

The last line holds because ``B_l > 0`` only where ``x > lo_l >= hi_j``,
where ``B_j`` has saturated to ``L_j``.  The (0,0)/(1,1) anchor
pseudo-points of the pipeline's fit are handled analytically — ``B_j(0)
= 0`` and ``B_j(1) = L_j`` — so the anchored system never materializes
pseudo-rows either.

The data SSE (anchors excluded, exactly what the search ranks by) is the
quadratic form ``Syy - 2 c.b + c.G c``.  That expression suffers
catastrophic cancellation when the fit is nearly interpolating, so
results with ``sse <= sse_floor`` (a small multiple of ``Syy``) or a
failed/non-finite solve are flagged not-OK: the caller re-evaluates
those few configurations with the exact dense path.  This keeps the
moments kernel a pure *ranking* device — wherever its precision could
bend a comparison, the exact evaluator decides.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import FittingError

__all__ = ["MomentProfile"]

#: Relative (to ``Syy``) floor under which a moments SSE is considered
#: cancellation noise rather than signal.  Roundoff in the quadratic
#: form is a few ULP of ``Syy`` (~1e-16 relative); 1e-9 leaves seven
#: orders of margin while only escaping fits that are essentially
#: interpolating — exactly the regime where exact re-evaluation is cheap
#: to amortize and ranking precision matters most.
_SSE_REL_FLOOR = 1e-9

#: Absolute floor so an identically-zero series (``Syy == 0``) also
#: escapes to the exact path instead of ranking on pure noise.
_SSE_ABS_FLOOR = 1e-300


def _prefix(values: np.ndarray) -> np.ndarray:
    """Length ``n+1`` prefix sums: ``out[i] = sum(values[:i])``."""
    out = np.empty(values.size + 1, dtype=float)
    out[0] = 0.0
    np.cumsum(values, out=out[1:])
    return out


class MomentProfile:
    """Per-series prefix moments + batched normal-equation evaluation.

    Build once per ``(x, y, weights)`` series, then call
    :meth:`evaluate_many` (or :meth:`evaluate_one`) for any number of
    candidate breakpoint configurations.  Input order is irrelevant —
    the constructor sorts by ``x`` (SSE is permutation invariant).

    The solved problem matches ``fit_fixed_breakpoints(..., monotone=
    False)``: unconstrained continuous PWL least squares with optional
    (0,0)/(1,1) anchor pseudo-points of weight ``anchor_weight * n``
    each; the returned SSE is the *data* SSE (anchors excluded).
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        weights: Optional[np.ndarray] = None,
        anchor: bool = True,
        anchor_weight: float = 0.25,
    ) -> None:
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if x.shape != y.shape:
            raise FittingError(
                f"x/y must be equal-length 1-D arrays: {x.shape} vs {y.shape}"
            )
        if x.size < 2:
            raise FittingError(f"need at least 2 points to fit, got {x.size}")
        if weights is None:
            w = np.ones(x.size)
        else:
            w = np.asarray(weights, dtype=float).ravel()
            if w.shape != x.shape:
                raise FittingError(
                    f"weights must match x: {w.shape} vs {x.shape}"
                )
        if x.size > 1 and np.any(np.diff(x) < 0.0):
            order = np.argsort(x, kind="stable")
            x, y, w = x[order], y[order], w[order]

        self.n = int(x.size)
        self.x = x
        wx = w * x
        self._p0 = _prefix(w)
        self._p1 = _prefix(wx)
        self._p2 = _prefix(wx * x)
        self._py = _prefix(w * y)
        self._pxy = _prefix(wx * y)
        self.syy = float(np.dot(w * y, y))
        self.anchor_w = float(anchor_weight) * self.n if anchor else 0.0
        self.sse_floor = _SSE_REL_FLOOR * abs(self.syy) + _SSE_ABS_FLOOR

    # ------------------------------------------------------------------
    def evaluate_many(
        self, breakpoints: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve every configuration in one batched pass.

        ``breakpoints`` is a ``(C, m)`` array (``m`` may be 0): each row
        holds one candidate's interior breakpoints, sorted ascending and
        strictly inside (0, 1).  Returns ``(coeffs, sse, ok)`` where
        ``coeffs`` is ``(C, m+2)`` — ``coeffs[:, 0]`` the intercepts,
        ``coeffs[:, 1:]`` the per-segment slopes — ``sse`` is the data
        SSE per candidate, and ``ok`` marks rows whose solve is reliable
        (finite, SSE above the cancellation floor).  Rows with ``ok``
        False must be re-evaluated by the exact dense path; their
        ``coeffs``/``sse`` are noise.
        """
        bp = np.asarray(breakpoints, dtype=float)
        if bp.ndim == 1:
            bp = bp.reshape(1, -1)
        n_configs, m = bp.shape
        n_seg = m + 1

        knots = np.empty((n_configs, m + 2), dtype=float)
        knots[:, 0] = 0.0
        knots[:, -1] = 1.0
        if m:
            knots[:, 1:-1] = bp
        lo = knots[:, :-1]
        seg_len = np.diff(knots, axis=1)

        idx = np.searchsorted(self.x, knots, side="left")
        i_lo = idx[:, :-1]
        i_hi = idx[:, 1:]
        s0 = self._p0[i_hi] - self._p0[i_lo]
        s1 = self._p1[i_hi] - self._p1[i_lo]
        s2 = self._p2[i_hi] - self._p2[i_lo]
        sy = self._py[i_hi] - self._py[i_lo]
        sxy = self._pxy[i_hi] - self._pxy[i_lo]
        t0 = self._p0[-1] - self._p0[i_hi]
        ty = self._py[-1] - self._py[i_hi]

        col_sum = (s1 - lo * s0) + seg_len * t0
        col_sq = (s2 - 2.0 * lo * s1 + lo * lo * s0) + seg_len * seg_len * t0
        col_y = (sxy - lo * sy) + seg_len * ty

        # Data Gram over params [intercept, slope_1 .. slope_{m+1}].
        gram = np.empty((n_configs, n_seg + 1, n_seg + 1), dtype=float)
        gram[:, 0, 0] = self._p0[-1]
        gram[:, 0, 1:] = col_sum
        gram[:, 1:, 0] = col_sum
        cross = np.triu(seg_len[:, :, None] * col_sum[:, None, :], 1)
        cross = cross + np.swapaxes(cross, 1, 2)
        diag = np.arange(n_seg)
        cross[:, diag, diag] = col_sq
        gram[:, 1:, 1:] = cross
        rhs = np.empty((n_configs, n_seg + 1), dtype=float)
        rhs[:, 0] = self._py[-1]
        rhs[:, 1:] = col_y

        if self.anchor_w > 0.0:
            wa = self.anchor_w
            system = gram.copy()
            target = rhs.copy()
            system[:, 0, 0] += 2.0 * wa
            system[:, 0, 1:] += wa * seg_len
            system[:, 1:, 0] += wa * seg_len
            system[:, 1:, 1:] += wa * (seg_len[:, :, None] * seg_len[:, None, :])
            target[:, 0] += wa
            target[:, 1:] += wa * seg_len
        else:
            system, target = gram, rhs

        coeffs = self._solve(system, target)
        gram_c = np.einsum("cij,cj->ci", gram, coeffs)
        sse = self.syy - 2.0 * np.einsum("ci,ci->c", coeffs, rhs) + np.einsum(
            "ci,ci->c", coeffs, gram_c
        )
        ok = (
            np.all(np.isfinite(coeffs), axis=1)
            & np.isfinite(sse)
            & (sse > self.sse_floor)
        )
        return coeffs, sse, ok

    def evaluate_one(self, breakpoints) -> Tuple[np.ndarray, float, bool]:
        """Single-configuration convenience wrapper over
        :meth:`evaluate_many`."""
        bp = np.asarray(list(breakpoints), dtype=float).reshape(1, -1)
        coeffs, sse, ok = self.evaluate_many(bp)
        return coeffs[0], float(sse[0]), bool(ok[0])

    # ------------------------------------------------------------------
    @staticmethod
    def _solve(system: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Batched symmetric solve; singular members degrade to NaN rows
        (flagged not-OK by the caller) instead of failing the batch."""
        try:
            return np.linalg.solve(system, target[..., None])[..., 0]
        except np.linalg.LinAlgError:
            pass
        out = np.empty_like(target)
        for i in range(system.shape[0]):
            try:
                out[i] = np.linalg.solve(system[i], target[i])
            except np.linalg.LinAlgError:
                out[i] = np.nan
        return out
