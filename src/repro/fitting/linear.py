"""Weighted least squares on small design matrices.

The PWLR search performs hundreds of solves on tall-skinny matrices
(thousands of folded samples, fewer than ~15 columns), so this wraps
:func:`numpy.linalg.lstsq` with the sqrt-weight transform and gives the
residual sum of squares directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import FittingError

__all__ = ["weighted_lstsq"]


def weighted_lstsq(
    design: np.ndarray,
    target: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """Solve ``min ||W^(1/2) (A c - y)||^2``; return ``(c, weighted_sse)``.

    Weights default to 1.  Rank deficiency is tolerated (lstsq returns the
    minimum-norm solution) because near-duplicate breakpoints can make two
    hinge columns almost identical during the search; the search discards
    such configurations by their BIC anyway.
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    if design.ndim != 2:
        raise FittingError(f"design must be 2-D, got shape {design.shape}")
    if target.ndim != 1 or target.size != design.shape[0]:
        raise FittingError(
            f"target shape {target.shape} mismatches design {design.shape}"
        )
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != target.shape:
            raise FittingError(
                f"weights shape {weights.shape} mismatches target {target.shape}"
            )
        if np.any(weights < 0):
            raise FittingError("weights must be non-negative")
        sqrt_w = np.sqrt(weights)
        design = design * sqrt_w[:, None]
        target = target * sqrt_w
    coeffs, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    residuals = target - design @ coeffs
    return coeffs, float(residuals @ residuals)
