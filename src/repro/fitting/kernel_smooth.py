"""Kernel-smoothing baseline — the *prior-work* curve fit.

Earlier folding papers reconstructed the counter evolution with a smooth
interpolation (Kriging-style) of the folded samples and read rates off its
derivative.  This module implements that baseline as a Gaussian local
*linear* regression (equivalent in spirit, standard in form): fitted value
and derivative at each evaluation point come from a weighted degree-1 fit
centered there.

Its weakness — the one the paper's PWLR fixes — is structural: a smooth
estimator blurs slope discontinuities over a bandwidth-sized window, so
fine phases bleed into their neighbors and no crisp boundary exists.
:func:`smoother_breakpoints` extracts the best boundaries the baseline can
offer (peaks of the derivative's change) for a head-to-head comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import FittingError

__all__ = ["KernelSmoother", "smoother_breakpoints"]


@dataclass
class KernelSmoother:
    """Gaussian local-linear smoother fitted to folded samples."""

    x: np.ndarray
    y: np.ndarray
    bandwidth: float

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.ndim != 1 or self.x.shape != self.y.shape:
            raise FittingError(
                f"x/y must be equal-length 1-D arrays: {self.x.shape} vs {self.y.shape}"
            )
        if self.x.size < 4:
            raise FittingError(f"need >= 4 points, got {self.x.size}")
        if self.bandwidth <= 0:
            raise FittingError(f"bandwidth must be positive, got {self.bandwidth}")

    @classmethod
    def with_plugin_bandwidth(cls, x: np.ndarray, y: np.ndarray) -> "KernelSmoother":
        """Rule-of-thumb bandwidth ~ n^(-1/5) scaled to the x spread."""
        x = np.asarray(x, dtype=float)
        spread = float(np.std(x)) or 0.25
        bandwidth = 1.06 * spread * x.size ** (-0.2)
        return cls(x=x, y=np.asarray(y, dtype=float), bandwidth=bandwidth)

    def evaluate(self, grid: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fitted values and derivatives at ``grid`` points.

        Local linear regression at each grid point g: minimize
        ``sum_i K((x_i-g)/h) (y_i - a - b (x_i - g))^2`` — then value = a,
        derivative = b.  Solved in closed form from weighted moments,
        vectorized over the grid.
        """
        grid = np.atleast_1d(np.asarray(grid, dtype=float))
        diff = self.x[None, :] - grid[:, None]
        weights = np.exp(-0.5 * (diff / self.bandwidth) ** 2)
        s0 = weights.sum(axis=1)
        s1 = (weights * diff).sum(axis=1)
        s2 = (weights * diff * diff).sum(axis=1)
        t0 = (weights * self.y[None, :]).sum(axis=1)
        t1 = (weights * diff * self.y[None, :]).sum(axis=1)
        denom = s0 * s2 - s1 * s1
        # Guard grid points with no local support (empty folded regions).
        safe = np.abs(denom) > 1e-300
        value = np.full(grid.shape, np.nan)
        deriv = np.full(grid.shape, np.nan)
        value[safe] = (s2[safe] * t0[safe] - s1[safe] * t1[safe]) / denom[safe]
        deriv[safe] = (s0[safe] * t1[safe] - s1[safe] * t0[safe]) / denom[safe]
        return value, deriv


def smoother_breakpoints(
    smoother: KernelSmoother,
    max_breakpoints: int = 11,
    n_grid: int = 256,
    prominence: float = 0.15,
) -> np.ndarray:
    """Best-effort phase boundaries from the smoothed derivative.

    Finds local maxima of ``|d(derivative)/dx|`` (slope-change intensity)
    whose height exceeds ``prominence`` times the derivative's dynamic
    range, keeping at most ``max_breakpoints`` strongest, separated by at
    least one bandwidth.
    """
    if n_grid < 8:
        raise FittingError(f"n_grid must be >= 8, got {n_grid}")
    grid = np.linspace(0.0, 1.0, n_grid)
    _, deriv = smoother.evaluate(grid)
    if np.any(~np.isfinite(deriv)):
        # Patch unsupported regions by nearest finite neighbor.
        finite = np.flatnonzero(np.isfinite(deriv))
        if finite.size == 0:
            return np.array([])
        deriv = np.interp(grid, grid[finite], deriv[finite])
    change = np.abs(np.gradient(deriv, grid))
    dynamic = float(deriv.max() - deriv.min())
    # A derivative whose total variation is negligible against its level
    # has no phase structure — bail out before numerical ripples become
    # "peaks" of a near-zero threshold.
    level = float(np.mean(np.abs(deriv)))
    if dynamic <= 0.05 * max(level, 1e-300):
        return np.array([])
    threshold = prominence * dynamic / smoother.bandwidth

    peaks = []
    for i in range(1, n_grid - 1):
        if change[i] >= change[i - 1] and change[i] > change[i + 1] and change[i] > threshold:
            peaks.append((change[i], grid[i]))
    peaks.sort(reverse=True)

    selected: list = []
    for _height, position in peaks:
        if len(selected) >= max_breakpoints:
            break
        if all(abs(position - s) >= smoother.bandwidth for s in selected):
            if 0.0 < position < 1.0:
                selected.append(float(position))
    return np.sort(np.asarray(selected))
