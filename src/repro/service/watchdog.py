"""Deadline enforcement: run a job in a killable worker process.

Threads cannot be preempted in Python, so a job that *hangs* — an NFS
stall inside ``read()``, a livelocked native kernel, a fault-injected
``hang_worker`` — would wedge a thread-pool batch forever.  When a batch
has a deadline, each attempt therefore runs in its own worker
**process** (its own process group, so the analyzer's ``n_jobs``
grandchildren die with it), and the submitting thread doubles as the
watchdog: it polls the result pipe, and on deadline expiry kills the
whole group (SIGTERM, short grace, SIGKILL) and raises
:class:`~repro.errors.DeadlineExceededError` — which the scheduler's
retry policy may retry before recording the job as ``TIMEOUT``.

The worker sends back only the small :class:`JobOutcome` summary the
:class:`~repro.service.jobs.JobRecord` needs; the analysis result itself
travels through the content-addressed store, exactly as in inline mode.

While it waits, the watchdog doubles as the job's pulse: every ~0.5s it
publishes a ``watchdog_heartbeat`` event (elapsed vs deadline) on the
telemetry bus, which the ``--live`` dashboard renders as a countdown on
the slowest running jobs.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.analysis.pipeline import AnalyzerConfig
from repro.errors import AnalysisError, DeadlineExceededError
from repro.observability.context import counter as _metric_counter
from repro.observability.context import publish as _publish
from repro.service.jobs import JobSpec

__all__ = ["JobOutcome", "RemoteJobError", "run_job_isolated"]

#: How often the watchdog polls the worker's pipe (seconds).
_POLL_S = 0.02

#: How often the watchdog publishes a heartbeat for a live job (seconds).
_HEARTBEAT_S = 0.5

#: Grace between SIGTERM and SIGKILL when a deadline fires (seconds).
_KILL_GRACE_S = 0.25


@dataclass(frozen=True)
class JobOutcome:
    """What one successful job attempt reports back to the scheduler."""

    fingerprint: str
    cache_hit: bool
    n_clusters: int
    n_phases: int
    worst_diagnostic: Optional[str]


class RemoteJobError(AnalysisError):
    """The worker process failed; the message carries the worker-side
    ``ExceptionType: message`` string verbatim."""


def _isolated_worker(
    conn,
    trace_path: str,
    store_root: str,
    config: AnalyzerConfig,
    salvage: bool,
    hang_s: Optional[float],
) -> None:
    """Worker-process entry point: analyze one trace through the store."""
    # Local import: the worker only pays for the cache/pipeline machinery
    # it actually runs, and the module import cycle stays trivial.
    from repro.store.artifacts import ResultStore
    from repro.store.cache import analyze_cached

    try:
        # Own process group, so the watchdog's killpg reaps any n_jobs
        # pool workers this analysis spawns along with us.
        os.setpgid(0, 0)
    except OSError:  # pragma: no cover - already a group leader
        pass
    try:
        if hang_s is not None:
            # Injected fault: stall before doing any work, exactly like
            # a worker stuck in an unresponsive syscall.
            time.sleep(hang_s)
        cached = analyze_cached(
            trace_path, ResultStore(store_root), config=config, salvage=salvage
        )
        worst = cached.result.diagnostics.worst
        payload: Dict[str, Any] = {
            "ok": True,
            "fingerprint": cached.fingerprint,
            "cache_hit": cached.cache_hit,
            "n_clusters": cached.result.n_clusters_analyzed,
            "n_phases": sum(c.n_phases for c in cached.result.clusters),
            "worst_diagnostic": None if worst is None else str(worst),
        }
    except Exception as exc:  # noqa: BLE001 — marshalled to the parent
        payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    try:
        conn.send(payload)
    finally:
        conn.close()


def _kill_worker(process: multiprocessing.process.BaseProcess) -> None:
    """SIGTERM the worker's process group, then SIGKILL stragglers."""
    pid = process.pid
    assert pid is not None
    for sig, grace in ((signal.SIGTERM, _KILL_GRACE_S), (signal.SIGKILL, None)):
        try:
            # The worker made itself a group leader; fall back to the
            # single process if the group is already gone (or the worker
            # died before setpgid).
            os.killpg(pid, sig)
        except (ProcessLookupError, PermissionError):
            try:
                os.kill(pid, sig)
            except ProcessLookupError:
                pass
        if grace is not None:
            process.join(timeout=grace)
            if not process.is_alive():
                break
    process.join()
    _metric_counter("service.watchdog.kills").inc()


def run_job_isolated(
    spec: JobSpec,
    store_root: str,
    config: AnalyzerConfig,
    salvage: bool,
    deadline_s: float,
    hang_s: Optional[float] = None,
) -> JobOutcome:
    """Run one job attempt in a watched worker process.

    Raises :class:`~repro.errors.DeadlineExceededError` when the worker
    overruns ``deadline_s`` (after killing it and its process group),
    :class:`RemoteJobError` when the worker reports a failure, and
    :class:`~repro.errors.AnalysisError` when the worker dies without
    reporting anything (a crash — OOM kill, segfault in a native lib).
    """
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_isolated_worker,
        args=(child_conn, spec.trace_path, store_root, config, salvage, hang_s),
        name=f"repro-job-{spec.label}",
    )
    process.start()
    child_conn.close()
    started = time.monotonic()
    deadline = started + deadline_s
    next_heartbeat = started + _HEARTBEAT_S
    payload: Optional[Dict[str, Any]] = None
    try:
        while True:
            if parent_conn.poll(_POLL_S):
                try:
                    payload = parent_conn.recv()
                except EOFError:
                    payload = None
                break
            if not process.is_alive():
                # One last drain: the worker may have sent and exited
                # between our poll and the liveness check.
                if parent_conn.poll(0):
                    try:
                        payload = parent_conn.recv()
                    except EOFError:
                        payload = None
                break
            now = time.monotonic()
            if now >= next_heartbeat:
                # The poll loop doubles as the job's pulse: elapsed vs
                # deadline feeds the live dashboard's countdown.
                _publish(
                    "watchdog_heartbeat",
                    label=spec.label,
                    elapsed_s=round(now - started, 3),
                    deadline_s=deadline_s,
                    pid=process.pid,
                )
                next_heartbeat = now + _HEARTBEAT_S
            if now >= deadline:
                _kill_worker(process)
                raise DeadlineExceededError(
                    f"job {spec.label} overran its {deadline_s:g}s deadline; "
                    f"worker process killed by the watchdog"
                )
    finally:
        parent_conn.close()
    process.join()
    if payload is None:
        raise AnalysisError(
            f"job {spec.label}: worker process died without reporting "
            f"(exit code {process.exitcode})"
        )
    if not payload.get("ok"):
        raise RemoteJobError(payload.get("error", "unknown worker failure"))
    return JobOutcome(
        fingerprint=payload["fingerprint"],
        cache_hit=payload["cache_hit"],
        n_clusters=payload["n_clusters"],
        n_phases=payload["n_phases"],
        worst_diagnostic=payload["worst_diagnostic"],
    )
