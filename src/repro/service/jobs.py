"""Job model for the batch analysis service.

One :class:`JobSpec` per trace to analyze; one :class:`JobRecord` per
spec tracking its life cycle through the scheduler:

``QUEUED`` → ``RUNNING`` → ``DONE`` | ``CACHED`` | ``FAILED`` |
``TIMEOUT`` | ``CANCELLED``

``CACHED`` is a successful terminal state — the store already held the
result for the trace's fingerprint, so the pipeline never ran (a resumed
batch also lands journaled-complete jobs here, flagged ``resumed``).
``TIMEOUT`` means the job's worker overran its deadline on every attempt
and was killed by the watchdog; ``CANCELLED`` means the batch was
interrupted (SIGINT/SIGTERM) before the job started.  The record keeps
everything ``repro batch`` prints per job (attempts, wall time,
fingerprint, headline counts, error) without holding the full
:class:`~repro.analysis.pipeline.AnalysisResult` alive for the whole
batch.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["JobState", "JobSpec", "JobRecord"]


class JobState(enum.Enum):
    """Where a batch job is in its life cycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CACHED = "cached"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"

    def __str__(self) -> str:
        return self.value

    @property
    def terminal(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self in (
            JobState.DONE,
            JobState.CACHED,
            JobState.FAILED,
            JobState.TIMEOUT,
            JobState.CANCELLED,
        )

    @property
    def ok(self) -> bool:
        """Whether the job produced a stored result."""
        return self in (JobState.DONE, JobState.CACHED)


@dataclass(frozen=True)
class JobSpec:
    """One trace to analyze."""

    trace_path: str

    @property
    def label(self) -> str:
        """Short display name (the trace file's basename)."""
        return os.path.basename(self.trace_path)


@dataclass
class JobRecord:
    """Mutable progress record for one :class:`JobSpec`."""

    spec: JobSpec
    state: JobState = JobState.QUEUED
    attempts: int = 0
    wall_s: float = 0.0
    fingerprint: Optional[str] = None
    n_clusters: int = 0
    n_phases: int = 0
    error: Optional[str] = None
    worst_diagnostic: Optional[str] = field(default=None)
    resumed: bool = False

    @property
    def short_fingerprint(self) -> str:
        """Abbreviated fingerprint for tables (empty when unknown)."""
        return self.fingerprint[:12] if self.fingerprint else ""

    @property
    def note(self) -> str:
        """The per-job note column: error, resume marker, or worst
        diagnostic (first that applies)."""
        if self.error:
            return self.error
        if self.resumed:
            return "resumed from journal"
        return self.worst_diagnostic or ""
