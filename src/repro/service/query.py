"""Cross-run queries over stored results: diff two analyses.

``repro diff`` answers "did this code get slower between these two
runs?" from the store alone — no traces re-read, no pipeline re-run.
:func:`diff_results` aligns two :class:`~repro.analysis.pipeline.
AnalysisResult` objects cluster-by-cluster (by cluster id) and
phase-by-phase (by index), then flags:

* **rate regressions** — a phase's per-counter event rate dropped by at
  least ``threshold`` relative to the baseline (the paper's per-phase
  rates are exactly what makes this comparable across runs);
* **duration regressions** — a phase's absolute duration grew by at
  least ``threshold``;
* **structural changes** — clusters or phases that appear/disappear or
  change count, reported as findings rather than silently skipped.

Improvements (rates up, durations down by the same margin) are listed
separately so a diff reads as a balance sheet, not an alarm feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.pipeline import AnalysisResult
from repro.analysis.report import format_table

__all__ = ["PhaseDelta", "DiffReport", "diff_results"]


@dataclass(frozen=True)
class PhaseDelta:
    """One per-phase metric change between baseline and candidate."""

    cluster_id: int
    phase_index: int
    metric: str  # counter name for rates, "duration_s" for durations
    baseline: float
    candidate: float

    @property
    def rel_change(self) -> float:
        """Relative change, candidate vs. baseline (0 when baseline is 0)."""
        if self.baseline == 0:
            return 0.0
        return (self.candidate - self.baseline) / self.baseline

    def describe(self) -> str:
        """One-line rendering."""
        return (
            f"cluster {self.cluster_id} phase {self.phase_index} "
            f"{self.metric}: {self.baseline:.4g} -> {self.candidate:.4g} "
            f"({self.rel_change:+.1%})"
        )


@dataclass
class DiffReport:
    """Outcome of :func:`diff_results`."""

    threshold: float
    regressions: List[PhaseDelta] = field(default_factory=list)
    improvements: List[PhaseDelta] = field(default_factory=list)
    structural: List[str] = field(default_factory=list)

    @property
    def has_regressions(self) -> bool:
        """Whether anything got worse (metric or structural)."""
        return bool(self.regressions) or bool(self.structural)

    def render(self) -> str:
        """Human-readable diff summary."""
        lines: List[str] = []
        if self.structural:
            lines.append("structural changes:")
            lines.extend(f"  - {note}" for note in self.structural)
        for title, deltas in (
            ("regressions", self.regressions),
            ("improvements", self.improvements),
        ):
            if not deltas:
                continue
            rows = [
                [
                    str(d.cluster_id),
                    str(d.phase_index),
                    d.metric,
                    f"{d.baseline:.4g}",
                    f"{d.candidate:.4g}",
                    f"{d.rel_change:+.1%}",
                ]
                for d in deltas
            ]
            lines.append(f"{title} (threshold {self.threshold:.0%}):")
            lines.append(
                format_table(
                    ["cluster", "phase", "metric", "baseline", "candidate",
                     "change"],
                    rows,
                )
            )
        if not lines:
            lines.append(
                f"no changes beyond threshold {self.threshold:.0%} "
                "(structure identical)"
            )
        return "\n".join(lines)


def _phase_deltas(
    cluster_id: int,
    index: int,
    metric: str,
    baseline: float,
    candidate: float,
    threshold: float,
    regressed_when_lower: bool,
    report: DiffReport,
) -> None:
    delta = PhaseDelta(
        cluster_id=cluster_id,
        phase_index=index,
        metric=metric,
        baseline=float(baseline),
        candidate=float(candidate),
    )
    change = delta.rel_change
    if abs(change) < threshold:
        return
    worse = change < 0 if regressed_when_lower else change > 0
    (report.regressions if worse else report.improvements).append(delta)


def diff_results(
    baseline: AnalysisResult,
    candidate: AnalysisResult,
    threshold: float = 0.10,
) -> DiffReport:
    """Compare ``candidate`` against ``baseline``.

    ``threshold`` is the minimum relative change reported (default 10%).
    """
    report = DiffReport(threshold=threshold)
    base_clusters = {c.cluster_id: c for c in baseline.clusters}
    cand_clusters = {c.cluster_id: c for c in candidate.clusters}
    for cid in sorted(set(base_clusters) - set(cand_clusters)):
        report.structural.append(
            f"cluster {cid} present in baseline only "
            f"({base_clusters[cid].time_share:.1%} of compute time)"
        )
    for cid in sorted(set(cand_clusters) - set(base_clusters)):
        report.structural.append(
            f"cluster {cid} present in candidate only "
            f"({cand_clusters[cid].time_share:.1%} of compute time)"
        )
    for cid in sorted(set(base_clusters) & set(cand_clusters)):
        base_phases = list(base_clusters[cid].phase_set.phases)
        cand_phases = list(cand_clusters[cid].phase_set.phases)
        if len(base_phases) != len(cand_phases):
            report.structural.append(
                f"cluster {cid}: phase count changed "
                f"{len(base_phases)} -> {len(cand_phases)}"
            )
            continue
        for index, (bp, cp) in enumerate(zip(base_phases, cand_phases)):
            _phase_deltas(
                cid, index, "duration_s", bp.duration_s, cp.duration_s,
                threshold, regressed_when_lower=False, report=report,
            )
            for name in sorted(set(bp.rates) & set(cp.rates)):
                _phase_deltas(
                    cid, index, name, bp.rates[name], cp.rates[name],
                    threshold, regressed_when_lower=True, report=report,
                )
    return report


def diff_stored(
    store: "ResultStore",  # noqa: F821 — imported lazily to avoid a cycle
    fingerprint_a: str,
    fingerprint_b: str,
    threshold: float = 0.10,
) -> DiffReport:
    """Diff two stored results by (possibly abbreviated) fingerprint."""
    a = store.get(store.resolve(fingerprint_a))
    b = store.get(store.resolve(fingerprint_b))
    return diff_results(a, b, threshold=threshold)
