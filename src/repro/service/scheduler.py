"""Batch scheduler: fan a manifest of traces across a bounded worker pool.

:func:`run_batch` is the engine behind ``repro batch``.  Each job runs
:func:`~repro.store.cache.analyze_cached` — fingerprint, cache lookup,
pipeline on miss — wrapped in the resilience layer's
:func:`~repro.resilience.retry.call_with_retry`, so a transiently
unreadable trace gets ``max_attempts`` tries with deterministic backoff
while a hard failure is recorded (state ``FAILED``, error preserved)
without sinking the rest of the batch.

Worker-pool semantics mirror ``AnalyzerConfig.n_jobs``: ``n_workers=1``
runs inline (no threads — exceptions and profiling behave exactly like a
loop), ``n_workers>1`` uses a thread pool.  Each worker re-activates the
submitting thread's observability context, so queue depth
(``service.queue_depth`` gauge), per-state job counters
(``service.jobs.done`` / ``.cached`` / ``.failed``), job latency
(``service.job_seconds`` histogram) and the store's hit/miss counters
all land in one merged registry.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.pipeline import AnalyzerConfig
from repro.analysis.report import format_table
from repro.errors import ConfigurationError
from repro.observability.context import counter as _metric_counter
from repro.observability.context import current as _current_obs
from repro.observability.context import gauge as _metric_gauge
from repro.observability.context import histogram as _metric_histogram
from repro.resilience.diagnostics import Diagnostics
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.store.artifacts import ResultStore
from repro.store.cache import analyze_cached

__all__ = ["BatchConfig", "BatchReport", "run_batch"]

#: Bucket bounds for the job latency histogram (seconds).
_JOB_SECONDS_BOUNDS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


@dataclass(frozen=True)
class BatchConfig:
    """Scheduler policy for one batch run."""

    n_workers: int = 1
    max_attempts: int = 1
    backoff_base_s: float = 0.0
    salvage: bool = False
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"batch config: n_workers must be >= 1, got {self.n_workers}"
            )

    @property
    def retry_policy(self) -> RetryPolicy:
        """The per-job retry policy this config implies."""
        return RetryPolicy(
            max_attempts=self.max_attempts, backoff_base_s=self.backoff_base_s
        )


@dataclass
class BatchReport:
    """Everything one :func:`run_batch` call did."""

    records: List[JobRecord]
    wall_s: float
    diagnostics: Diagnostics

    # ------------------------------------------------------------------
    def _count(self, state: JobState) -> int:
        return sum(1 for r in self.records if r.state == state)

    @property
    def n_jobs(self) -> int:
        """Total jobs scheduled."""
        return len(self.records)

    @property
    def n_done(self) -> int:
        """Jobs that ran the pipeline to completion."""
        return self._count(JobState.DONE)

    @property
    def n_cached(self) -> int:
        """Jobs satisfied from the store without running the pipeline."""
        return self._count(JobState.CACHED)

    @property
    def n_failed(self) -> int:
        """Jobs that exhausted their attempts."""
        return self._count(JobState.FAILED)

    @property
    def ok(self) -> bool:
        """Whether every job produced a stored result."""
        return self.n_failed == 0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of successful jobs served from the store."""
        successes = self.n_done + self.n_cached
        return self.n_cached / successes if successes else 0.0

    # ------------------------------------------------------------------
    def render_status(self) -> str:
        """Human-readable per-job table plus a summary line."""
        rows = []
        for record in self.records:
            rows.append(
                [
                    record.spec.label,
                    str(record.state),
                    str(record.attempts),
                    f"{record.wall_s:.3f}",
                    record.short_fingerprint,
                    str(record.n_clusters),
                    str(record.n_phases),
                    record.error or record.worst_diagnostic or "",
                ]
            )
        table = format_table(
            ["trace", "state", "tries", "wall_s", "fingerprint", "clusters",
             "phases", "note"],
            rows,
        )
        summary = (
            f"{self.n_jobs} job(s): {self.n_done} analyzed, "
            f"{self.n_cached} cached, {self.n_failed} failed "
            f"(hit ratio {self.cache_hit_ratio:.0%}) in {self.wall_s:.3f}s"
        )
        return f"{table}\n{summary}"


def _run_job(
    record: JobRecord,
    store: ResultStore,
    config: BatchConfig,
    diagnostics: Diagnostics,
    lock: threading.Lock,
    pending: List[int],
) -> None:
    """Execute one job in place, updating ``record`` and the metrics."""
    record.state = JobState.RUNNING
    start = time.perf_counter()

    def attempt():
        record.attempts += 1
        return analyze_cached(
            record.spec.trace_path,
            store,
            config=config.analyzer,
            salvage=config.salvage,
        )

    try:
        cached = call_with_retry(
            attempt,
            config.retry_policy,
            diagnostics=diagnostics,
            label=f"analyze {record.spec.label}",
        )
    except Exception as exc:  # noqa: BLE001 — a job must not sink the batch
        record.state = JobState.FAILED
        record.error = f"{type(exc).__name__}: {exc}"
        with lock:
            diagnostics.error(
                "service",
                f"job {record.spec.label} failed after "
                f"{record.attempts} attempt(s)",
                error=record.error,
            )
        _metric_counter("service.jobs.failed").inc()
    else:
        record.state = JobState.CACHED if cached.cache_hit else JobState.DONE
        record.fingerprint = cached.fingerprint
        record.n_clusters = cached.result.n_clusters_analyzed
        record.n_phases = sum(c.n_phases for c in cached.result.clusters)
        worst = cached.result.diagnostics.worst
        record.worst_diagnostic = None if worst is None else str(worst)
        _metric_counter(
            "service.jobs.cached" if cached.cache_hit else "service.jobs.done"
        ).inc()
    finally:
        record.wall_s = time.perf_counter() - start
        _metric_histogram(
            "service.job_seconds", bounds=_JOB_SECONDS_BOUNDS
        ).observe(record.wall_s)
        with lock:
            pending[0] -= 1
            _metric_gauge("service.queue_depth").set(pending[0])


def run_batch(
    specs: Sequence[JobSpec],
    store: ResultStore,
    config: Optional[BatchConfig] = None,
) -> BatchReport:
    """Analyze every spec through ``store``; never raises for job failures.

    Returns a :class:`BatchReport` whose records preserve the input order
    regardless of completion order.  Check :attr:`BatchReport.ok` (the
    CLI turns it into the exit status).
    """
    cfg = config or BatchConfig()
    if not specs:
        raise ConfigurationError("batch: no jobs to run")
    records = [JobRecord(spec=spec) for spec in specs]
    diagnostics = Diagnostics()
    lock = threading.Lock()
    pending = [len(records)]
    _metric_gauge("service.queue_depth").set(pending[0])
    start = time.perf_counter()
    if cfg.n_workers == 1 or len(records) == 1:
        for record in records:
            _run_job(record, store, cfg, diagnostics, lock, pending)
    else:
        # Worker threads start with a fresh contextvars context where the
        # observability ContextVar is DISABLED; re-activate the caller's.
        obs = _current_obs()

        def worker(record: JobRecord) -> None:
            with obs.activate():
                _run_job(record, store, cfg, diagnostics, lock, pending)

        n_workers = min(cfg.n_workers, len(records))
        with ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-batch"
        ) as pool:
            for future in [pool.submit(worker, r) for r in records]:
                future.result()
    wall_s = time.perf_counter() - start
    return BatchReport(records=records, wall_s=wall_s, diagnostics=diagnostics)
