"""Crash-safe batch scheduler: fan a manifest across a bounded worker pool.

:func:`run_batch` is the engine behind ``repro batch``.  Each job runs
:func:`~repro.store.cache.analyze_cached` — fingerprint, cache lookup,
pipeline on miss — wrapped in the resilience layer's
:func:`~repro.resilience.retry.call_with_retry`, so a transiently
unreadable trace gets ``max_attempts`` tries with deterministic backoff
while a hard failure is recorded (state ``FAILED``, error preserved)
without sinking the rest of the batch.  On top of that sit the
crash-safety mechanisms:

* **deadlines + watchdog** — with ``deadline_s`` set, every attempt runs
  in a killable worker process (:mod:`repro.service.watchdog`); a hung
  worker is killed, retried, and ultimately recorded as ``TIMEOUT``;
* **write-ahead journal** — every terminal job is fsynced to
  ``<store>/journal.jsonl`` (:mod:`repro.service.journal`), so
  ``resume=True`` skips already-complete jobs after a crash or Ctrl-C;
* **cooperative cancellation** — SIGINT/SIGTERM set a cancel flag:
  in-flight jobs drain, queued jobs become ``CANCELLED``, and a partial
  :class:`BatchReport` (``interrupted`` set) is still returned;
* **circuit breaker** — a job that keeps failing *identically* sheds
  its remaining retries (:mod:`repro.resilience.breaker`);
* **advisory store lock** — two concurrent batches sharing a store fail
  fast (:class:`~repro.store.lock.StoreLock`) instead of interleaving
  journal writes.

Worker-pool semantics mirror ``AnalyzerConfig.n_jobs``: ``n_workers=1``
runs inline (no threads — exceptions and profiling behave exactly like a
loop), ``n_workers>1`` uses a thread pool.  Each worker re-activates the
submitting thread's observability context, so queue depth
(``service.queue_depth`` gauge), per-state job counters
(``service.jobs.done`` / ``.cached`` / ``.failed`` / ``.timeout`` /
``.cancelled`` / ``.resumed``), job latency (``service.job_seconds``
histogram) and the store's hit/miss counters all land in one merged
registry.  (In deadline mode the child process's store counters stay in
the child; the parent-side job-state counters remain authoritative.)

Beyond metrics, the scheduler narrates the batch on the telemetry bus
(:mod:`repro.observability.events`): ``batch_started``, a ``job_queued``
per runnable job, lifecycle events as each job starts and reaches its
terminal state, and ``batch_drained`` with the final counts — feeding
the ``--live`` dashboard and the ``/healthz`` endpoint.  When
``BatchConfig.ledger`` is on and observability is enabled, the finished
batch also appends one fsynced record to the store's telemetry ledger
(:mod:`repro.observability.ledger`) for ``repro perf``.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.pipeline import AnalyzerConfig
from repro.analysis.report import format_table
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.observability.context import counter as _metric_counter
from repro.observability.context import current as _current_obs
from repro.observability.context import gauge as _metric_gauge
from repro.observability.context import histogram as _metric_histogram
from repro.observability.context import publish as _publish
from repro.observability.ledger import RunLedger, stage_table
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.diagnostics import Diagnostics
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.journal import BatchJournal
from repro.service.watchdog import JobOutcome, RemoteJobError, run_job_isolated
from repro.store.artifacts import ResultStore
from repro.store.cache import analyze_cached
from repro.store.fingerprint import fingerprint_config
from repro.store.lock import StoreLock

__all__ = ["BatchConfig", "BatchReport", "run_batch"]

#: Bucket bounds for the job latency histogram (seconds).
_JOB_SECONDS_BOUNDS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)

#: Journal states a resume may trust (successful terminals).
_RESUMABLE_STATES = (str(JobState.DONE), str(JobState.CACHED))

#: Terminal job state -> bus event kind.
_TERMINAL_EVENTS = {
    JobState.DONE: "job_finished",
    JobState.CACHED: "job_cached",
    JobState.FAILED: "job_failed",
    JobState.TIMEOUT: "job_timeout",
    JobState.CANCELLED: "job_cancelled",
}


def _publish_terminal(record: JobRecord) -> None:
    """Announce a job's terminal state on the telemetry bus."""
    kind = _TERMINAL_EVENTS.get(record.state)
    if kind is None:  # pragma: no cover - only terminal states reach here
        return
    payload: Dict[str, object] = {
        "wall_s": round(record.wall_s, 6),
        "attempts": record.attempts,
    }
    if record.error:
        payload["error"] = record.error
    _publish(kind, label=record.spec.label, **payload)


@dataclass(frozen=True)
class BatchConfig:
    """Scheduler policy for one batch run."""

    n_workers: int = 1
    max_attempts: int = 1
    backoff_base_s: float = 0.0
    salvage: bool = False
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)
    #: Per-job deadline in seconds; setting it moves each attempt into a
    #: killable worker process watched by :mod:`repro.service.watchdog`.
    deadline_s: Optional[float] = None
    #: Skip jobs the write-ahead journal records as already complete.
    resume: bool = False
    #: Maintain ``<store>/journal.jsonl`` (required for ``resume``).
    journal: bool = True
    #: Hold the store's advisory lock for the duration of the batch.
    lock: bool = True
    #: Consecutive identical failures that open a job's circuit breaker
    #: and shed its remaining retries (0 disables the breaker).
    breaker_threshold: int = 3
    #: Injected faults (chaos tests / TAB benches); ``None`` in production.
    faults: Optional[FaultPlan] = None
    #: Append one telemetry record to ``<store>/telemetry/runs.jsonl``
    #: after the batch (only when observability is enabled).
    ledger: bool = True

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"batch config: n_workers must be >= 1, got {self.n_workers}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"batch config: deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.breaker_threshold < 0:
            raise ConfigurationError(
                f"batch config: breaker_threshold must be >= 0, "
                f"got {self.breaker_threshold}"
            )
        if self.resume and not self.journal:
            raise ConfigurationError(
                "batch config: resume requires the journal to be enabled"
            )

    @property
    def retry_policy(self) -> RetryPolicy:
        """The per-job retry policy this config implies."""
        return RetryPolicy(
            max_attempts=self.max_attempts, backoff_base_s=self.backoff_base_s
        )


@dataclass
class BatchReport:
    """Everything one :func:`run_batch` call did."""

    records: List[JobRecord]
    wall_s: float
    diagnostics: Diagnostics
    #: Why the batch stopped early ("SIGINT", "SIGTERM", ...), or None.
    interrupted: Optional[str] = None

    # ------------------------------------------------------------------
    def _count(self, state: JobState) -> int:
        return sum(1 for r in self.records if r.state == state)

    @property
    def n_jobs(self) -> int:
        """Total jobs scheduled."""
        return len(self.records)

    @property
    def n_done(self) -> int:
        """Jobs that ran the pipeline to completion."""
        return self._count(JobState.DONE)

    @property
    def n_cached(self) -> int:
        """Jobs satisfied from the store without running the pipeline."""
        return self._count(JobState.CACHED)

    @property
    def n_failed(self) -> int:
        """Jobs that exhausted their attempts."""
        return self._count(JobState.FAILED)

    @property
    def n_timeout(self) -> int:
        """Jobs killed by the watchdog on every attempt."""
        return self._count(JobState.TIMEOUT)

    @property
    def n_cancelled(self) -> int:
        """Jobs never started because the batch was interrupted."""
        return self._count(JobState.CANCELLED)

    @property
    def n_resumed(self) -> int:
        """Jobs satisfied from the write-ahead journal on resume."""
        return sum(1 for r in self.records if r.resumed)

    @property
    def ok(self) -> bool:
        """Whether every job produced a stored result."""
        return self.n_failed == 0 and self.n_timeout == 0 and self.n_cancelled == 0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of successful jobs served from the store."""
        successes = self.n_done + self.n_cached
        return self.n_cached / successes if successes else 0.0

    def state_counts(self) -> Dict[str, int]:
        """``{state: count}`` over every record (zero states omitted)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = str(record.state)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report for ``repro batch --json``."""
        return {
            "n_jobs": self.n_jobs,
            "states": self.state_counts(),
            "n_resumed": self.n_resumed,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "wall_s": round(self.wall_s, 6),
            "ok": self.ok,
            "interrupted": self.interrupted,
            "jobs": [
                {
                    "trace": record.spec.trace_path,
                    "label": record.spec.label,
                    "state": str(record.state),
                    "attempts": record.attempts,
                    "wall_s": round(record.wall_s, 6),
                    "fingerprint": record.fingerprint,
                    "n_clusters": record.n_clusters,
                    "n_phases": record.n_phases,
                    "worst_diagnostic": record.worst_diagnostic,
                    "resumed": record.resumed,
                    "error": record.error,
                }
                for record in self.records
            ],
        }

    # ------------------------------------------------------------------
    def render_status(self) -> str:
        """Human-readable per-job table plus a summary line."""
        rows = []
        for record in self.records:
            rows.append(
                [
                    record.spec.label,
                    str(record.state),
                    str(record.attempts),
                    f"{record.wall_s:.3f}",
                    record.short_fingerprint,
                    str(record.n_clusters),
                    str(record.n_phases),
                    record.note,
                ]
            )
        table = format_table(
            ["trace", "state", "tries", "wall_s", "fingerprint", "clusters",
             "phases", "note"],
            rows,
        )
        extra = ""
        if self.n_timeout:
            extra += f", {self.n_timeout} timeout"
        if self.n_cancelled:
            extra += f", {self.n_cancelled} cancelled"
        summary = (
            f"{self.n_jobs} job(s): {self.n_done} analyzed, "
            f"{self.n_cached} cached, {self.n_failed} failed{extra} "
            f"(hit ratio {self.cache_hit_ratio:.0%}) in {self.wall_s:.3f}s"
        )
        lines = [table, summary]
        if self.interrupted:
            lines.append(
                f"batch interrupted by {self.interrupted}: in-flight jobs "
                f"drained, {self.n_cancelled} queued job(s) cancelled "
                f"(re-run with --resume to finish)"
            )
        return "\n".join(lines)


class _CancelSignal:
    """Sticky batch-wide cancellation flag (set by signals or faults)."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def trip(self, reason: str) -> None:
        if not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def tripped(self) -> bool:
        return self._event.is_set()


def _install_signal_handlers(cancel: _CancelSignal) -> Dict[int, object]:
    """Route SIGINT/SIGTERM into ``cancel`` (main thread only)."""
    if threading.current_thread() is not threading.main_thread():
        return {}
    previous: Dict[int, object] = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        def handler(signum, _frame, _cancel=cancel):
            _cancel.trip(signal.Signals(signum).name)

        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic embeddings
            pass
    return previous


def _restore_signal_handlers(previous: Dict[int, object]) -> None:
    for sig, handler in previous.items():
        try:
            signal.signal(sig, handler)  # type: ignore[arg-type]
        except (ValueError, OSError):  # pragma: no cover
            pass


def _format_error(exc: BaseException) -> str:
    """One-line error string for job records (worker-side strings pass
    through verbatim, local exceptions get their type prefixed)."""
    if isinstance(exc, RemoteJobError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


def _root_cause(exc: BaseException) -> BaseException:
    """The original failure under retry/breaker wrappers."""
    seen = set()
    while (
        isinstance(exc, RetryExhaustedError)
        and exc.__cause__ is not None
        and id(exc.__cause__) not in seen
    ):
        seen.add(id(exc))
        exc = exc.__cause__
    return exc


def _inline_outcome(trace_path: str, store, cfg: BatchConfig,
                    diagnostics: Diagnostics) -> JobOutcome:
    """Run one attempt in-process (no deadline) and summarize it."""
    cached = analyze_cached(
        trace_path,
        store,
        config=cfg.analyzer,
        salvage=cfg.salvage,
        diagnostics=diagnostics,
    )
    worst = cached.result.diagnostics.worst
    return JobOutcome(
        fingerprint=cached.fingerprint,
        cache_hit=cached.cache_hit,
        n_clusters=cached.result.n_clusters_analyzed,
        n_phases=sum(c.n_phases for c in cached.result.clusters),
        worst_diagnostic=None if worst is None else str(worst),
    )


def _run_job(
    record: JobRecord,
    store: ResultStore,
    config: BatchConfig,
    diagnostics: Diagnostics,
    breaker: Optional[CircuitBreaker],
    lock: threading.Lock,
    pending: List[int],
    finish: Callable[[JobRecord], None],
) -> None:
    """Execute one job in place, updating ``record`` and the metrics."""
    record.state = JobState.RUNNING
    start = time.perf_counter()
    label = record.spec.label
    _publish("job_started", label=label)
    hang_s = config.faults.hang_s(label) if config.faults else None

    def attempt() -> JobOutcome:
        record.attempts += 1
        if config.deadline_s is not None:
            return run_job_isolated(
                record.spec,
                store.root,
                config.analyzer,
                config.salvage,
                config.deadline_s,
                hang_s=hang_s,
            )
        return _inline_outcome(record.spec.trace_path, store, config, diagnostics)

    try:
        outcome = call_with_retry(
            attempt,
            config.retry_policy,
            diagnostics=diagnostics,
            label=f"analyze {label}",
            breaker=breaker,
            breaker_key=record.spec.trace_path,
        )
    except Exception as exc:  # noqa: BLE001 — a job must not sink the batch
        cause = _root_cause(exc)
        if isinstance(cause, DeadlineExceededError):
            record.state = JobState.TIMEOUT
            record.error = str(cause)
            with lock:
                diagnostics.error(
                    "service",
                    f"job {label} timed out after {record.attempts} attempt(s); "
                    f"worker killed by the watchdog",
                    deadline_s=config.deadline_s,
                    attempts=record.attempts,
                )
            _metric_counter("service.jobs.timeout").inc()
        else:
            record.state = JobState.FAILED
            record.error = _format_error(cause)
            with lock:
                diagnostics.error(
                    "service",
                    f"job {label} failed after {record.attempts} attempt(s)",
                    error=record.error,
                )
            _metric_counter("service.jobs.failed").inc()
    else:
        record.state = JobState.CACHED if outcome.cache_hit else JobState.DONE
        record.fingerprint = outcome.fingerprint
        record.n_clusters = outcome.n_clusters
        record.n_phases = outcome.n_phases
        record.worst_diagnostic = outcome.worst_diagnostic
        _metric_counter(
            "service.jobs.cached" if outcome.cache_hit else "service.jobs.done"
        ).inc()
    finally:
        record.wall_s = time.perf_counter() - start
        _metric_histogram(
            "service.job_seconds", bounds=_JOB_SECONDS_BOUNDS
        ).observe(record.wall_s)
        with lock:
            pending[0] -= 1
            _metric_gauge("service.queue_depth").set(pending[0])
        _publish_terminal(record)
        finish(record)


def run_batch(
    specs: Sequence[JobSpec],
    store: ResultStore,
    config: Optional[BatchConfig] = None,
) -> BatchReport:
    """Analyze every spec through ``store``; never raises for job failures.

    Returns a :class:`BatchReport` whose records preserve the input order
    regardless of completion order.  Check :attr:`BatchReport.ok` (the
    CLI turns it into the exit status) and :attr:`BatchReport.interrupted`
    for a SIGINT/SIGTERM drain.  The only exceptions that escape are
    configuration problems and :class:`~repro.errors.StoreLockError` when
    another batch holds the store.
    """
    cfg = config or BatchConfig()
    if not specs:
        raise ConfigurationError("batch: no jobs to run")
    records = [JobRecord(spec=spec) for spec in specs]
    diagnostics = Diagnostics()
    lock = threading.Lock()
    breaker = (
        CircuitBreaker(cfg.breaker_threshold) if cfg.breaker_threshold else None
    )
    store_lock = StoreLock(store.root) if cfg.lock else None
    if store_lock is not None:
        store_lock.acquire()
    journal = BatchJournal(store.root) if cfg.journal else None
    cancel = _CancelSignal()
    terminal_count = [0]

    def finish(record: JobRecord) -> None:
        """Shared terminal-state bookkeeping (journal, injected SIGINT)."""
        with lock:
            if journal is not None:
                journal.record_job(record)
            terminal_count[0] += 1
            n_terminal = terminal_count[0]
        if (
            cfg.faults is not None
            and cfg.faults.sigint_after is not None
            and n_terminal >= cfg.faults.sigint_after
        ):
            cancel.trip("SIGINT (injected)")

    def cancel_record(record: JobRecord) -> None:
        record.state = JobState.CANCELLED
        record.error = f"cancelled before start ({cancel.reason})"
        _metric_counter("service.jobs.cancelled").inc()
        with lock:
            pending[0] -= 1
            _metric_gauge("service.queue_depth").set(pending[0])
        _publish_terminal(record)
        finish(record)

    previous_handlers = _install_signal_handlers(cancel)
    start = time.perf_counter()
    try:
        # ------------------------------------------------------------------
        # resume: trust the journal for jobs that already completed
        # ------------------------------------------------------------------
        n_resumed = 0
        if cfg.resume and journal is not None:
            previous = journal.load_last_entries()
            for record in records:
                entry = previous.get(record.spec.trace_path)
                if (
                    entry
                    and entry.get("state") in _RESUMABLE_STATES
                    and isinstance(entry.get("fingerprint"), str)
                    and store.has(entry["fingerprint"])
                ):
                    record.state = JobState.CACHED
                    record.resumed = True
                    record.fingerprint = entry["fingerprint"]
                    record.n_clusters = int(entry.get("n_clusters") or 0)
                    record.n_phases = int(entry.get("n_phases") or 0)
                    record.worst_diagnostic = entry.get("worst_diagnostic")
                    n_resumed += 1
                    _metric_counter("service.jobs.resumed").inc()
            if n_resumed:
                diagnostics.info(
                    "service",
                    f"resume: journal satisfied {n_resumed} of "
                    f"{len(records)} job(s)",
                    resumed=n_resumed,
                )
        if journal is not None:
            journal.record_start(len(records), resumed=n_resumed)

        runnable = [r for r in records if not r.state.terminal]
        pending = [len(runnable)]
        _metric_gauge("service.queue_depth").set(pending[0])
        _publish(
            "batch_started",
            n_jobs=len(records),
            n_runnable=len(runnable),
            resumed=n_resumed,
            n_workers=cfg.n_workers,
        )
        for record in records:
            if record.resumed:
                _publish(
                    "job_cached", label=record.spec.label, resumed=True,
                    wall_s=0.0, attempts=0,
                )
        for record in runnable:
            _publish("job_queued", label=record.spec.label)

        # ------------------------------------------------------------------
        # dispatch
        # ------------------------------------------------------------------
        if cfg.n_workers == 1 or len(runnable) <= 1:
            for record in runnable:
                if cancel.tripped:
                    cancel_record(record)
                    continue
                _run_job(record, store, cfg, diagnostics, breaker, lock,
                         pending, finish)
        else:
            # Worker threads start with a fresh contextvars context where
            # the observability ContextVar is DISABLED; re-activate the
            # caller's.
            obs = _current_obs()

            def worker(record: JobRecord) -> None:
                with obs.activate():
                    if cancel.tripped:
                        cancel_record(record)
                        return
                    _run_job(record, store, cfg, diagnostics, breaker, lock,
                             pending, finish)

            n_workers = min(cfg.n_workers, len(runnable))
            with ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix="repro-batch"
            ) as pool:
                for future in [pool.submit(worker, r) for r in runnable]:
                    future.result()
    finally:
        _restore_signal_handlers(previous_handlers)
        if journal is not None:
            journal.close()
        if store_lock is not None:
            store_lock.release()
    wall_s = time.perf_counter() - start
    report = BatchReport(
        records=records,
        wall_s=wall_s,
        diagnostics=diagnostics,
        interrupted=cancel.reason if cancel.tripped else None,
    )
    _publish(
        "batch_drained",
        n_jobs=report.n_jobs,
        done=report.n_done,
        cached=report.n_cached,
        failed=report.n_failed,
        timeout=report.n_timeout,
        cancelled=report.n_cancelled,
        wall_s=round(wall_s, 6),
        interrupted=report.interrupted,
    )
    if cfg.ledger:
        _append_ledger_record(report, store, cfg)
    return report


def _append_ledger_record(
    report: BatchReport, store: ResultStore, cfg: BatchConfig
) -> None:
    """Record this batch in the store's telemetry ledger (best effort).

    Skipped silently when observability is disabled — there is no span
    tree or metrics snapshot worth persisting, and the no-op fast path
    must stay free.  An unwritable ledger degrades to a diagnostics
    warning; it never fails the batch it describes.
    """
    obs = _current_obs()
    if not obs.enabled:
        return
    try:
        ledger = RunLedger(store.root)
        ledger.append(
            ledger.build_record(
                kind="batch",
                wall_s=report.wall_s,
                stages=stage_table(obs.profile()),
                metrics=dict(obs.metrics.snapshot()),
                config_fingerprint=fingerprint_config(
                    cfg.analyzer, salvage=cfg.salvage
                ),
                n_jobs=report.n_jobs,
                states=report.state_counts(),
                cache_hit_ratio=round(report.cache_hit_ratio, 4),
                interrupted=report.interrupted,
            )
        )
    except OSError as exc:
        report.diagnostics.warning(
            "service",
            "telemetry ledger write failed; run not recorded",
            error=str(exc),
            path=RunLedger(store.root).path,
        )
