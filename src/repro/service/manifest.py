"""Manifest loading: turn "what to analyze" into a list of job specs.

``repro batch`` accepts either form:

* a **directory** — every ``*.rpt`` file directly inside it, sorted by
  name (deterministic fan-out order);
* a **manifest file** — one trace path per line, ``#`` comments and
  blank lines ignored, relative paths resolved against the manifest's
  own directory so a manifest can travel with its traces.

Duplicate paths are collapsed (first occurrence wins) — analyzing the
same trace twice in one batch would only fight over the same store
entry.
"""

from __future__ import annotations

import os
from typing import List

from repro.errors import ConfigurationError
from repro.service.jobs import JobSpec

__all__ = ["TRACE_SUFFIX", "load_manifest"]

#: File suffix a directory scan picks up.
TRACE_SUFFIX = ".rpt"


def load_manifest(path: str) -> List[JobSpec]:
    """Expand ``path`` (directory or manifest file) into job specs."""
    if os.path.isdir(path):
        specs = [
            JobSpec(trace_path=os.path.join(path, name))
            for name in sorted(os.listdir(path))
            if name.endswith(TRACE_SUFFIX)
            and os.path.isfile(os.path.join(path, name))
        ]
        if not specs:
            raise ConfigurationError(
                f"directory {path} contains no {TRACE_SUFFIX} traces"
            )
        return specs
    if not os.path.isfile(path):
        raise ConfigurationError(f"manifest {path}: no such file or directory")
    base = os.path.dirname(os.path.abspath(path))
    specs: List[JobSpec] = []
    seen = set()
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            trace_path = line if os.path.isabs(line) else os.path.join(base, line)
            if trace_path in seen:
                continue
            seen.add(trace_path)
            specs.append(JobSpec(trace_path=trace_path))
    if not specs:
        raise ConfigurationError(f"manifest {path} lists no traces")
    return specs
