"""Batch analysis service on top of :mod:`repro.store`.

The store makes analysis results durable and addressable; this package
makes *running* analyses at fleet scale routine — and crash-safe:

* :mod:`repro.service.manifest` — expand a directory or manifest file
  into :class:`~repro.service.jobs.JobSpec` entries;
* :mod:`repro.service.scheduler` — :func:`run_batch`, a bounded worker
  pool with per-job retry/backoff and circuit breaking (via
  :mod:`repro.resilience`), per-job states
  (queued/running/done/cached/failed/timeout/cancelled), cooperative
  SIGINT/SIGTERM draining, and merged observability metrics (queue
  depth, cache hit ratio, latency);
* :mod:`repro.service.watchdog` — :func:`run_job_isolated`, deadline
  enforcement by running an attempt in a killable worker process;
* :mod:`repro.service.journal` — :class:`BatchJournal`, the write-ahead
  journal that makes ``repro batch --resume`` skip completed jobs;
* :mod:`repro.service.query` — cross-run queries over stored results:
  :func:`diff_results` flags per-phase rate and duration regressions
  between two analyses;
* :mod:`repro.service.dashboard` — :class:`LiveDashboard`, the in-place
  TTY status block behind ``repro batch --live``, driven by the
  telemetry bus;
* :mod:`repro.service.perf` — :func:`check_history`, self-regression
  checks that fit the paper's PWLR model to the telemetry ledger's
  per-stage duration series (``repro perf history`` / ``check``).

CLI surface: ``repro batch``, ``repro query``, ``repro diff``,
``repro store fsck``, ``repro perf``.
"""

from repro.service.dashboard import LiveDashboard
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.journal import JOURNAL_NAME, BatchJournal
from repro.service.manifest import TRACE_SUFFIX, load_manifest
from repro.service.perf import (
    PerfReport,
    StageVerdict,
    check_history,
    fit_duration_series,
    kernel_history,
    kernel_shift_note,
    stage_series,
)
from repro.service.query import DiffReport, PhaseDelta, diff_results, diff_stored
from repro.service.scheduler import BatchConfig, BatchReport, run_batch
from repro.service.watchdog import JobOutcome, RemoteJobError, run_job_isolated

__all__ = [
    "JobState",
    "JobSpec",
    "JobRecord",
    "JOURNAL_NAME",
    "BatchJournal",
    "TRACE_SUFFIX",
    "load_manifest",
    "BatchConfig",
    "BatchReport",
    "run_batch",
    "JobOutcome",
    "RemoteJobError",
    "run_job_isolated",
    "DiffReport",
    "PhaseDelta",
    "diff_results",
    "diff_stored",
    "LiveDashboard",
    "PerfReport",
    "StageVerdict",
    "check_history",
    "fit_duration_series",
    "kernel_history",
    "kernel_shift_note",
    "stage_series",
]
