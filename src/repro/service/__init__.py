"""Batch analysis service on top of :mod:`repro.store`.

The store makes analysis results durable and addressable; this package
makes *running* analyses at fleet scale routine:

* :mod:`repro.service.manifest` — expand a directory or manifest file
  into :class:`~repro.service.jobs.JobSpec` entries;
* :mod:`repro.service.scheduler` — :func:`run_batch`, a bounded worker
  pool with per-job retry/backoff (via :mod:`repro.resilience.retry`),
  per-job states (queued/running/done/cached/failed) and merged
  observability metrics (queue depth, cache hit ratio, latency);
* :mod:`repro.service.query` — cross-run queries over stored results:
  :func:`diff_results` flags per-phase rate and duration regressions
  between two analyses.

CLI surface: ``repro batch``, ``repro query``, ``repro diff``.
"""

from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.manifest import TRACE_SUFFIX, load_manifest
from repro.service.query import DiffReport, PhaseDelta, diff_results, diff_stored
from repro.service.scheduler import BatchConfig, BatchReport, run_batch

__all__ = [
    "JobState",
    "JobSpec",
    "JobRecord",
    "TRACE_SUFFIX",
    "load_manifest",
    "BatchConfig",
    "BatchReport",
    "run_batch",
    "DiffReport",
    "PhaseDelta",
    "diff_results",
    "diff_stored",
]
