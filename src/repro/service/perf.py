"""Self-regression checks: fit the paper's PWLR model to our own history.

The telemetry ledger (:mod:`repro.observability.ledger`) accumulates one
record per run with per-stage wall-clock totals.  This module dogfoods
the repository's own contribution: each stage's duration series is
turned into the paper's *accumulated-counter* setting — normalized
cumulative time against normalized run index — and fitted with
:func:`repro.fitting.pwlr.fit_pwlr` (anchored, monotone).  On such a
series a stage running at a steady cost is a straight line; a
performance regression is a *level shift*, exactly the breakpoint
structure the fitter was built to find.  Each fitted segment's slope
converts back to seconds-per-run, and ``repro perf check --gate`` fails
the build when the latest segment's level exceeds the previous one by a
threshold.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.errors import ConfigurationError, FittingError
from repro.fitting.pwlr import PWLRConfig, fit_pwlr

__all__ = [
    "TOTAL_STAGE",
    "StageVerdict",
    "PerfReport",
    "stage_series",
    "fit_duration_series",
    "segment_levels",
    "kernel_history",
    "kernel_shift_note",
    "check_history",
]

#: Pseudo-stage for each record's end-to-end wall time.
TOTAL_STAGE = "(total)"

#: Fewest runs a stage needs before fitting (the PWLR fitter's own floor).
MIN_RUNS = 8

#: A previous level below this (seconds/run) is noise, not a baseline.
_LEVEL_FLOOR_S = 1e-6


def stage_series(
    records: Sequence[Mapping[str, object]],
) -> Dict[str, List[float]]:
    """Per-stage wall-clock duration series across ledger records.

    Returns ``{stage: [seconds, ...]}`` oldest-first, including the
    :data:`TOTAL_STAGE` series built from each record's ``wall_s``.  A
    stage absent from a record simply skips that run (series lengths may
    differ), so a pipeline change that renames a stage degrades to a
    shorter history instead of corrupting the series.
    """
    series: Dict[str, List[float]] = {TOTAL_STAGE: []}
    for record in records:
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)):
            series[TOTAL_STAGE].append(float(wall))
        stages = record.get("stages")
        if not isinstance(stages, Mapping):
            continue
        for name, row in stages.items():
            if not isinstance(row, Mapping):
                continue
            value = row.get("wall_s")
            if isinstance(value, (int, float)):
                series.setdefault(str(name), []).append(float(value))
    if not series[TOTAL_STAGE]:
        del series[TOTAL_STAGE]
    return series


def kernel_history(records: Sequence[Mapping[str, object]]) -> List[str]:
    """Per-record PWLR search-kernel label from the ledger's metrics
    snapshot: ``"moments"``, ``"exact"``, ``"mixed"`` (a run whose fits
    used both, e.g. "auto" resolving differently per cluster), or
    ``"-"`` when the record predates the kernel counters.
    """
    labels: List[str] = []
    for record in records:
        metrics = record.get("metrics")
        moments = exact = 0.0
        if isinstance(metrics, Mapping):
            m = metrics.get("pwlr.kernel.moments", 0)
            e = metrics.get("pwlr.kernel.exact", 0)
            moments = float(m) if isinstance(m, (int, float)) else 0.0
            exact = float(e) if isinstance(e, (int, float)) else 0.0
        if moments and exact:
            labels.append("mixed")
        elif moments:
            labels.append("moments")
        elif exact:
            labels.append("exact")
        else:
            labels.append("-")
    return labels


def _kernel_transition(labels: Sequence[str]) -> Optional[Tuple[int, str, str]]:
    """``(run_index, old, new)`` of the first kernel change (1-based,
    ignoring unlabeled runs), or ``None`` when the history is uniform."""
    prev: Optional[str] = None
    for i, label in enumerate(labels, 1):
        if label == "-":
            continue
        if prev is not None and label != prev:
            return i, prev, label
        prev = label
    return None


def kernel_shift_note(records: Sequence[Mapping[str, object]]) -> str:
    """One-line kernel attribution for ``repro perf history``: which
    search kernel the recorded runs used, and where it changed — the
    first thing to rule out when a fit-stage level shift appears."""
    labels = kernel_history(records)
    seen = [label for label in labels if label != "-"]
    if not seen:
        return ""
    if len(set(seen)) == 1:
        return f"pwlr search kernel: {seen[0]} for all {len(seen)} run(s)"
    parts: List[str] = []
    current: Optional[str] = None
    start = last = 0
    for i, label in enumerate(labels, 1):
        if label == "-":
            continue
        if label != current:
            if current is not None:
                parts.append(f"{current} (runs {start}-{last})")
            current, start = label, i
        last = i
    parts.append(f"{current} (runs {start}-{last})")
    return "pwlr search kernel: " + ", ".join(parts)


def fit_duration_series(durations: Sequence[float]):
    """Fit the PWLR model to one stage's duration history.

    The series is recast as the paper's accumulated-counter shape:
    ``x = run_index / n`` against ``y = cumulative_seconds / total``,
    both on [0, 1], then fitted anchored (the cumulative series pins
    (0,0)-(1,1) by construction) and monotone (time never un-elapses).
    A run's cost is the local slope, so a sustained slowdown shows up
    as a breakpoint between two slope levels.

    Raises :class:`~repro.errors.FittingError` for fewer than
    :data:`MIN_RUNS` runs or an all-zero series.
    """
    values = np.asarray(list(durations), dtype=float)
    n = values.size
    if n < MIN_RUNS:
        raise FittingError(
            f"perf: need >= {MIN_RUNS} runs to fit, got {n}"
        )
    total = float(values.sum())
    if total <= 0.0:
        raise FittingError("perf: all-zero duration series")
    x = np.arange(1, n + 1, dtype=float) / n
    y = np.cumsum(values) / total
    config = PWLRConfig(
        # Segments shorter than one run are meaningless on an n-run
        # series; keep the bound inside the fitter's (0, 0.5) window.
        min_separation=float(min(0.45, max(0.011, 1.0 / n))),
        anchor=True,
        monotone=True,
    )
    return fit_pwlr(x, y, config)


def segment_levels(model, total_s: float, n_runs: int) -> List[float]:
    """Per-segment cost level in seconds **per run**.

    On the normalized cumulative series a slope of 1 means the average
    per-run cost; scaling by ``total / n`` converts each segment's slope
    back to seconds per run.
    """
    scale = total_s / n_runs
    return [float(slope) * scale for slope in model.slopes]


@dataclass(frozen=True)
class StageVerdict:
    """The perf check's conclusion for one stage's history."""

    stage: str
    n_runs: int
    status: str  #: "ok", "regressed", or "insufficient"
    latest_level_s: float = 0.0
    prev_level_s: float = 0.0
    ratio: float = 1.0
    #: 1-based run index where the latest level began (None when flat).
    breakpoint_run: Optional[int] = None
    n_segments: int = 0
    note: str = ""

    @property
    def regressed(self) -> bool:
        """Whether this stage tripped the gate."""
        return self.status == "regressed"


@dataclass
class PerfReport:
    """Every stage verdict from one :func:`check_history` pass."""

    verdicts: List[StageVerdict] = field(default_factory=list)
    threshold: float = 1.5
    n_records: int = 0

    @property
    def regressions(self) -> List[StageVerdict]:
        """The verdicts that tripped the gate."""
        return [v for v in self.verdicts if v.regressed]

    @property
    def ok(self) -> bool:
        """Whether no stage regressed (the ``--gate`` exit status)."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable verdict table plus a summary line."""
        rows = []
        for v in self.verdicts:
            rows.append(
                [
                    v.stage,
                    str(v.n_runs),
                    v.status,
                    f"{v.latest_level_s:.4f}" if v.n_segments else "-",
                    f"{v.prev_level_s:.4f}" if v.n_segments > 1 else "-",
                    f"{v.ratio:.2f}x" if v.n_segments > 1 else "-",
                    "-" if v.breakpoint_run is None else f"run {v.breakpoint_run}",
                    v.note,
                ]
            )
        table = format_table(
            ["stage", "runs", "status", "latest s/run", "prev s/run",
             "ratio", "shift at", "note"],
            rows,
        )
        n_reg = len(self.regressions)
        summary = (
            f"{len(self.verdicts)} stage(s) over {self.n_records} run(s): "
            f"{n_reg} regression(s) at threshold {self.threshold:g}x"
        )
        return f"{table}\n{summary}"


def _verdict_for(
    stage: str, durations: Sequence[float], threshold: float, min_runs: int
) -> StageVerdict:
    n = len(durations)
    if n < max(min_runs, MIN_RUNS):
        return StageVerdict(
            stage=stage, n_runs=n, status="insufficient",
            note=f"need >= {max(min_runs, MIN_RUNS)} runs",
        )
    try:
        model = fit_duration_series(durations)
    except FittingError as exc:
        return StageVerdict(
            stage=stage, n_runs=n, status="insufficient", note=str(exc)
        )
    levels = segment_levels(model, float(np.sum(durations)), n)
    latest = levels[-1]
    if len(levels) == 1:
        return StageVerdict(
            stage=stage, n_runs=n, status="ok",
            latest_level_s=latest, n_segments=1, note="flat",
        )
    prev = levels[-2]
    breakpoint_run = int(round(float(model.breakpoints[-1]) * n)) + 1
    ratio = latest / prev if prev > _LEVEL_FLOOR_S else float("inf")
    regressed = prev > _LEVEL_FLOOR_S and ratio > threshold
    return StageVerdict(
        stage=stage,
        n_runs=n,
        status="regressed" if regressed else "ok",
        latest_level_s=latest,
        prev_level_s=prev,
        ratio=ratio,
        breakpoint_run=breakpoint_run,
        n_segments=len(levels),
        note="level shift" if regressed else "",
    )


def check_history(
    records: Sequence[Mapping[str, object]],
    threshold: float = 1.5,
    min_runs: int = MIN_RUNS,
) -> PerfReport:
    """Fit every stage's ledger history and judge it against ``threshold``.

    A stage is ``regressed`` when the PWLR fit over its run-indexed
    cumulative time ends in a segment whose per-run level exceeds the
    previous segment's by more than ``threshold`` (a multiplicative
    factor); stages with fewer than ``min_runs`` records are reported
    as ``insufficient``, never failed — a fresh store must pass the
    gate.  Verdicts are sorted regressions-first, then by stage name.
    """
    if threshold <= 1.0:
        raise ConfigurationError(
            f"perf: threshold must be > 1.0, got {threshold}"
        )
    series = stage_series(records)
    verdicts = [
        _verdict_for(stage, durations, threshold, min_runs)
        for stage, durations in series.items()
    ]
    # A fit-stage level shift that coincides with a search-kernel change
    # is attributable to the kernel, not the workload — surface that on
    # the verdict so the gate's output explains itself.
    transition = _kernel_transition(kernel_history(records))
    if transition is not None:
        run, old, new = transition
        tag = f"search kernel {old}->{new} at run {run}"
        verdicts = [
            dataclasses.replace(v, note=f"{v.note}; {tag}" if v.note else tag)
            if "fit" in v.stage
            else v
            for v in verdicts
        ]
    verdicts.sort(key=lambda v: (not v.regressed, v.stage))
    return PerfReport(
        verdicts=verdicts, threshold=threshold, n_records=len(records)
    )
