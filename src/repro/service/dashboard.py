"""In-place TTY dashboard for a running batch (``repro batch --live``).

A :class:`LiveDashboard` subscribes to the telemetry bus and redraws a
small status block in place (ANSI cursor-up + erase): per-state counts,
throughput, ETA from the terminal-job rate, and the slowest currently
running jobs with their watchdog heartbeat when deadlines are armed.
Renders are throttled to ``refresh_s`` except on state-changing events,
and every draw happens under a lock — bus events arrive from worker
threads.  The CLI only attaches the dashboard when stderr is a TTY;
otherwise the existing per-job progress lines remain the interface.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, TextIO

from repro.observability.events import (
    JOB_STATE_EVENTS,
    JobStateTracker,
    TelemetryEvent,
)

__all__ = ["LiveDashboard"]

#: Events that always force a redraw (state transitions, batch edges).
_FORCE_KINDS = frozenset(JOB_STATE_EVENTS) | {"batch_started", "batch_drained"}

#: Display order for the per-state counts line.
_STATE_ORDER = ("queued", "running", "done", "cached", "failed", "timeout",
                "cancelled")


class LiveDashboard:
    """Bus subscriber that keeps a live status block on a terminal.

    Subscribe it to an enabled bus, let the batch run, and call
    :meth:`close` afterwards to leave the final frame on screen::

        dash = LiveDashboard()
        obs.events.subscribe(dash)
        try:
            report = run_batch(specs, store, config)
        finally:
            obs.events.unsubscribe(dash)
            dash.close()
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_s: float = 0.25,
        top_running: int = 3,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_s = refresh_s
        self.top_running = top_running
        self.tracker = JobStateTracker()
        self._lock = threading.Lock()
        self._t0 = time.time()
        self._last_draw = 0.0
        self._lines_drawn = 0
        self._heartbeats: Dict[str, Dict[str, float]] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def __call__(self, event: TelemetryEvent) -> None:
        """Apply one bus event and redraw when due (subscriber entry)."""
        self.tracker(event)
        if event.kind == "watchdog_heartbeat" and event.label is not None:
            beat = {
                key: float(value)
                for key, value in event.payload.items()
                if key in ("elapsed_s", "deadline_s")
                and isinstance(value, (int, float))
            }
            with self._lock:
                self._heartbeats[event.label] = beat
        elif event.label is not None and event.kind in JOB_STATE_EVENTS:
            if JOB_STATE_EVENTS[event.kind] != "running":
                with self._lock:
                    self._heartbeats.pop(event.label, None)
        now = time.time()
        force = event.kind in _FORCE_KINDS
        with self._lock:
            due = force or (now - self._last_draw) >= self.refresh_s
        if due:
            self._draw(now)

    # ------------------------------------------------------------------
    def render_lines(self, now: Optional[float] = None) -> List[str]:
        """The current frame as plain lines (no ANSI) — testable as-is."""
        now = time.time() if now is None else now
        snap = self.tracker.snapshot()
        counts: Dict[str, int] = dict(snap["states"])  # type: ignore[arg-type]
        n_total = int(snap["n_jobs"]) or sum(counts.values())
        n_terminal = int(snap["n_terminal"])
        elapsed = max(now - self._t0, 1e-9)
        rate = n_terminal / elapsed
        remaining = max(n_total - n_terminal, 0)
        if snap["batch_done"] or not remaining:
            eta = "done" if snap["batch_done"] else "-"
        elif rate > 0:
            eta = f"{remaining / rate:.0f}s"
        else:
            eta = "-"
        lines = [
            f"batch: {n_terminal}/{n_total} finished · "
            f"{counts.get('running', 0)} running · "
            f"{rate:.2f} job/s · elapsed {elapsed:.1f}s · ETA {eta}",
            "  " + "  ".join(
                f"{state} {counts.get(state, 0)}" for state in _STATE_ORDER
            ),
        ]
        with self._lock:
            heartbeats = dict(self._heartbeats)
        for label, job_elapsed in self.tracker.running_jobs(now)[: self.top_running]:
            beat = heartbeats.get(label)
            if beat and "deadline_s" in beat:
                shown = (
                    f"{beat.get('elapsed_s', job_elapsed):.1f}s "
                    f"of {beat['deadline_s']:g}s deadline"
                )
            else:
                shown = f"{job_elapsed:.1f}s"
            lines.append(f"  > {label}  {shown}")
        return lines

    def _draw(self, now: float) -> None:
        lines = self.render_lines(now)
        with self._lock:
            if self._closed:
                return
            text = ""
            if self._lines_drawn:
                # Cursor to the start of our block, erase to screen end.
                text += f"\x1b[{self._lines_drawn}F\x1b[0J"
            text += "\n".join(lines) + "\n"
            try:
                self.stream.write(text)
                self.stream.flush()
            except (OSError, ValueError):  # stream died; go quiet
                self._closed = True
                return
            self._lines_drawn = len(lines)
            self._last_draw = now

    def close(self) -> None:
        """Draw the final frame and stop updating (idempotent)."""
        if self._closed:
            return
        self._draw(time.time())
        with self._lock:
            self._closed = True
