"""Write-ahead batch journal: what happened, durable line by line.

``run_batch`` appends one JSON line to ``<store>/journal.jsonl`` every
time a job reaches a terminal state (flushed and fsynced before the next
job starts), plus a header line per batch run.  After a crash, a kill,
or a Ctrl-C, ``repro batch --resume`` replays the journal: jobs whose
last entry is a *successful* terminal state (``done``/``cached``) and
whose artifact is still present in the store are skipped; everything
else — failed, timed out, cancelled, or simply never journaled — runs
again.  Because the store is content-addressed and the pipeline
deterministic, a resumed batch's artifacts are byte-identical to an
uninterrupted run's.

The journal is append-only across runs (last entry per trace wins) and
deliberately tolerant on read: a torn final line from a crash mid-append
is skipped, not fatal — that is the crash-safety contract.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Any, Dict, Optional

from repro.service.jobs import JobRecord

__all__ = ["JOURNAL_NAME", "BatchJournal"]

#: Journal file name, directly under the store root.
JOURNAL_NAME = "journal.jsonl"


class BatchJournal:
    """Append-only JSONL journal of batch job outcomes."""

    def __init__(self, store_root: str) -> None:
        self.path = os.path.join(store_root, JOURNAL_NAME)
        self._handle: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _append(self, entry: Dict[str, Any]) -> None:
        if self._handle is None:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        json.dump(entry, self._handle, sort_keys=True)
        self._handle.write("\n")
        # Durability over throughput: a journal that loses its tail on
        # power-cut would re-run work, but one that lies would not be a
        # journal.  Jobs cost seconds; an fsync costs microseconds.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_start(self, n_jobs: int, resumed: int = 0) -> None:
        """Journal the beginning of a batch run."""
        self._append(
            {
                "type": "batch",
                "ts": time.time(),
                "n_jobs": n_jobs,
                "resumed": resumed,
                "pid": os.getpid(),
            }
        )

    def record_job(self, record: JobRecord) -> None:
        """Journal one job's terminal state."""
        self._append(
            {
                "type": "job",
                "ts": time.time(),
                "trace_path": record.spec.trace_path,
                "label": record.spec.label,
                "state": str(record.state),
                "fingerprint": record.fingerprint,
                "attempts": record.attempts,
                "wall_s": round(record.wall_s, 6),
                "n_clusters": record.n_clusters,
                "n_phases": record.n_phases,
                "worst_diagnostic": record.worst_diagnostic,
                "error": record.error,
            }
        )

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading (resume)
    # ------------------------------------------------------------------
    def load_last_entries(self) -> Dict[str, Dict[str, Any]]:
        """Last journaled entry per trace path (empty when no journal).

        Unparseable lines — a torn tail from a crashed writer, manual
        edits — are skipped silently: the journal is an optimization,
        and the worst case of a lost line is re-running one job.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        if not os.path.isfile(self.path):
            return entries
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    isinstance(entry, dict)
                    and entry.get("type") == "job"
                    and isinstance(entry.get("trace_path"), str)
                ):
                    entries[entry["trace_path"]] = entry
        return entries

    def __repr__(self) -> str:
        return f"BatchJournal({self.path!r})"
